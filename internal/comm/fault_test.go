package comm

import (
	"errors"
	"testing"
	"time"

	"negfsim/internal/device"
)

// TestKillUnblocksSurvivorsPromptly kills one rank mid-collective and
// checks that the survivors fail with ErrRankDead well before the deadline
// — detection rides the cancellation channel, not the timeout.
func TestKillUnblocksSurvivorsPromptly(t *testing.T) {
	c := NewCluster(3)
	c.SetTimeout(30 * time.Second) // detection must NOT need this
	c.InjectFaults(&FaultPlan{Kill: true, KillRank: 2, KillAtOp: 0})
	start := time.Now()
	err := c.Run(func(r *Rank) error {
		send := make([][]complex128, 3)
		for to := range send {
			send[to] = make([]complex128, 8)
		}
		_, err := r.Alltoallv(send)
		return err
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead", err)
	}
	if c.DeadRank() != 2 {
		t.Fatalf("DeadRank() = %d, want 2", c.DeadRank())
	}
	if elapsed > 2*time.Second {
		t.Fatalf("detection took %v with a 30 s deadline — survivors blocked instead of cancelling", elapsed)
	}
}

// TestRankErrorCancelsPeers checks that an ordinary error return (not an
// injected fault) also marks the cluster failed, so a peer blocked on the
// dead rank gets ErrRankDead promptly instead of a timeout.
func TestRankErrorCancelsPeers(t *testing.T) {
	c := NewCluster(2)
	c.SetTimeout(30 * time.Second)
	boom := errors.New("application failure")
	start := time.Now()
	err := c.Run(func(r *Rank) error {
		if r.ID == 0 {
			return boom
		}
		_, err := r.Recv(0) // rank 0 dies without sending
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the application failure", err)
	}
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead for the blocked peer", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("peer waited %v instead of cancelling promptly", elapsed)
	}
}

// TestConfigurableDeadline checks that SetTimeout bounds the detection
// latency of silent failures (nothing closes the cancellation channel here,
// so the deadline is the only way out).
func TestConfigurableDeadline(t *testing.T) {
	c := NewCluster(2)
	const deadline = 50 * time.Millisecond
	c.SetTimeout(deadline)
	start := time.Now()
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			_, err := r.Recv(0) // rank 0 never sends
			return err
		}
		return nil
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed < deadline {
		t.Fatalf("timed out after %v, before the %v deadline", elapsed, deadline)
	}
	if elapsed > 100*deadline {
		t.Fatalf("timed out after %v, far beyond the %v deadline", elapsed, deadline)
	}
}

// TestDroppedMessageBreaksAccounting drops one message and checks the
// receive-side accounting: the sender's total includes the lost bytes, the
// receiver's does not, and the difference is exactly the dropped payload.
func TestDroppedMessageBreaksAccounting(t *testing.T) {
	c := NewCluster(2)
	c.SetTimeout(100 * time.Millisecond)
	c.InjectFaults(&FaultPlan{Drop: true, DropFrom: 0, DropTo: 1, DropLimit: 1})
	err := c.Run(func(r *Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, make([]complex128, 10)); err != nil { // dropped
				return err
			}
			return r.Send(1, make([]complex128, 25)) // delivered
		}
		data, err := r.Recv(0)
		if err != nil {
			return err
		}
		if len(data) != 25 {
			t.Errorf("received the dropped message? len=%d", len(data))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SentBytes(0); got != 16*(10+25) {
		t.Fatalf("sender accounted %d bytes, want %d", got, 16*(10+25))
	}
	if got := c.ReceivedBytes(1); got != 16*25 {
		t.Fatalf("receiver accounted %d bytes, want %d (the dropped payload must not be credited)", got, 16*25)
	}
}

// TestSentEqualsRecvdAfterQuiescence checks the global invariant of a
// fault-free run: once every message is delivered, total sent and total
// received bytes agree (they only disagree transiently or under faults).
func TestSentEqualsRecvdAfterQuiescence(t *testing.T) {
	const n = 4
	c := NewCluster(n)
	err := c.Run(func(r *Rank) error {
		send := make([][]complex128, n)
		for to := 0; to < n; to++ {
			send[to] = make([]complex128, r.ID+to+1) // asymmetric payloads
		}
		_, err := r.Alltoallv(send)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent, recvd int64
	for r := 0; r < n; r++ {
		sent += c.SentBytes(r)
		recvd += c.ReceivedBytes(r)
	}
	if sent == 0 || sent != recvd {
		t.Fatalf("after quiescence sent=%d recvd=%d, want equal and non-zero", sent, recvd)
	}
}

// TestDelayedMessageStillDelivered checks that a delay fault slows a link
// without losing the message.
func TestDelayedMessageStillDelivered(t *testing.T) {
	c := NewCluster(2)
	const lag = 50 * time.Millisecond
	c.InjectFaults(&FaultPlan{Delay: lag, DelayFrom: 0, DelayTo: 1})
	start := time.Now()
	err := c.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, make([]complex128, 4))
		}
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lag {
		t.Fatalf("run finished in %v, before the %v injected delay", elapsed, lag)
	}
}

// TestHappyPathTimerGarbageFree is the benchmark guard of the deadline
// mechanism: a Send/Recv round trip on the fast path allocates only the
// payload copy — no per-call time.After timer (the old implementation left
// a live timer + channel behind on every operation).
func TestHappyPathTimerGarbageFree(t *testing.T) {
	c := NewCluster(2)
	r0 := &Rank{ID: 0, c: c}
	r1 := &Rank{ID: 1, c: c}
	payload := make([]complex128, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if err := r0.Send(1, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := r1.Recv(0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("happy-path Send+Recv allocates %.1f objects/op, want ≤ 1 (the payload copy)", allocs)
	}
}

// BenchmarkSendRecv measures the happy-path round trip; -benchmem shows the
// single payload-copy allocation the AllocsPerRun guard pins.
func BenchmarkSendRecv(b *testing.B) {
	c := NewCluster(2)
	r0 := &Rank{ID: 0, c: c}
	r1 := &Rank{ID: 1, c: c}
	payload := make([]complex128, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r0.Send(1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := r1.Recv(0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestKilledRankDuringDaCeExchange runs the real communication-avoiding
// exchange pattern with a mid-exchange kill: the collective must fail with
// ErrRankDead on every surviving rank, promptly.
func TestKilledRankDuringDaCeExchange(t *testing.T) {
	p := device.Mini()
	c := NewCluster(4)
	c.SetTimeout(10 * time.Second)
	c.InjectFaults(&FaultPlan{Kill: true, KillRank: 3, KillAtOp: 2})
	start := time.Now()
	err := c.Run(func(r *Rank) error { return DaCeExchangeSSE(r, p, 2, 2) })
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("exchange failure took %v to surface", elapsed)
	}
}
