package comm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"negfsim/internal/obs"
	"negfsim/internal/transport"
)

// Exchange telemetry. The per-transfer byte accounting lives in the
// cluster's own atomics (always on — tests compare it against the §4.1
// closed-form models); the observability layer mirrors it as gauge funcs
// registered per cluster (see NewCluster) plus the global counters and the
// collective-latency timer below.
var (
	obsSends      = obs.GetCounter("comm.sends")
	obsSentBytes  = obs.GetCounter("comm.sent_bytes_total")
	obsRecvdBytes = obs.GetCounter("comm.recvd_bytes_total")
	obsAlltoallv  = obs.GetTimer("comm.alltoallv")
)

// DefaultTimeout is the per-operation deadline of a fresh cluster: the
// backstop that turns protocol mismatches and silent failures into errors
// instead of hangs. Override with Cluster.SetTimeout.
const DefaultTimeout = 10 * time.Second

// Cluster is an MPI-communicator stand-in: ranks exchanging ordered
// []complex128 messages with byte accounting on every transfer, running the
// simulator's real exchange patterns at reduced scale so the measured
// traffic can be checked against the closed-form models.
//
// The message plumbing is pluggable (internal/transport): the default
// in-process transport hosts every rank as a goroutine of this process over
// channel mailboxes, while NewClusterTCP hosts ONE rank per OS process and
// carries the links over real sockets. All policy — deadlines, fault
// injection, cancellation, accounting — lives here, identically for both.
//
// Failures are first-class: a fault plan (InjectFaults) can kill a rank or
// tamper with messages, and the death of any rank — injected, returned as
// an error, panicked, or (over TCP) a peer process dying — closes a
// per-cluster cancellation channel that unblocks every pending operation
// with ErrRankDead, so survivors detect the failure immediately rather than
// after the full deadline.
type Cluster struct {
	n     int
	ctx   context.Context     // caller cancellation (never nil)
	tr    transport.Transport // the message plumbing (inproc or TCP)
	id    string              // gauge-family identity; "" is the legacy unlabeled family
	local []int               // ranks hosted by this process, ascending
	sent  []atomic.Int64      // bytes sent per rank
	recvd []atomic.Int64      // bytes received per rank (credited at Recv)

	timeout   time.Duration
	quit      chan struct{} // closed by Close; stops the transport watcher
	closeOnce sync.Once

	// Fault state (see fault.go).
	plan      *FaultPlan
	ops       []atomic.Int64 // per-rank operation counter for KillAtOp
	dropsDone atomic.Int64   // drop budget spent
	deadRank  atomic.Int64   // first dead rank id; -1 while healthy
	down      chan struct{}  // closed on first death
}

// gaugeFamily records how many per-rank gauge funcs the most recent cluster
// of one identity registered, and which cluster owns them.
type gaugeFamily struct {
	n     int
	owner *Cluster
}

// rankGauges tracks the registered per-rank gauge families, keyed by cluster
// identity, so a successor cluster of the same identity can unregister the
// tail when a smaller cluster replaces a larger one (otherwise
// comm.sent_bytes{rank="7"} would keep scraping a dead instance forever)
// while clusters of different identities — say the default in-process family
// and a TCP peer's family — never clobber each other's series.
var rankGauges struct {
	sync.Mutex
	families map[string]*gaugeFamily
}

// gaugeName builds the per-rank gauge series name for a cluster identity:
// the legacy comm.sent_bytes{rank="r"} when id is empty, and
// comm.sent_bytes{cluster="id",rank="r"} otherwise.
func gaugeName(id, base string, rank int) string {
	if id == "" {
		return obs.Labeled(base, "rank", strconv.Itoa(rank))
	}
	return obs.Labeled(base, "cluster", id, "rank", strconv.Itoa(rank))
}

// totalGaugeName builds the cluster-total gauge name for an identity.
func totalGaugeName(id string) string {
	if id == "" {
		return "comm.total_bytes"
	}
	return obs.Labeled("comm.total_bytes", "cluster", id)
}

// registerGauges points the cluster's gauge family at c and retires any
// higher-rank series left by a larger predecessor of the same identity.
func registerGauges(c *Cluster) {
	obs.RegisterGaugeFunc(totalGaugeName(c.id), c.TotalBytes)
	rankGauges.Lock()
	defer rankGauges.Unlock()
	if rankGauges.families == nil {
		rankGauges.families = make(map[string]*gaugeFamily)
	}
	for r := 0; r < c.n; r++ {
		r := r
		obs.RegisterGaugeFunc(gaugeName(c.id, "comm.sent_bytes", r), func() int64 { return c.SentBytes(r) })
		obs.RegisterGaugeFunc(gaugeName(c.id, "comm.recvd_bytes", r), func() int64 { return c.ReceivedBytes(r) })
	}
	fam := rankGauges.families[c.id]
	if fam == nil {
		fam = &gaugeFamily{}
		rankGauges.families[c.id] = fam
	}
	for r := c.n; r < fam.n; r++ {
		obs.UnregisterGaugeFunc(gaugeName(c.id, "comm.sent_bytes", r))
		obs.UnregisterGaugeFunc(gaugeName(c.id, "comm.recvd_bytes", r))
	}
	fam.n = c.n
	fam.owner = c
}

// NewCluster creates an in-process communicator with n ranks. A Send or Recv
// that waits longer than the deadline (DefaultTimeout; configurable with
// SetTimeout) fails, so protocol mismatches surface as test errors instead
// of hangs.
//
// The cluster's byte counters are exported on the observability registry as
// per-rank gauges — comm.sent_bytes{rank="r"}, comm.recvd_bytes{rank="r"} —
// plus comm.total_bytes. The gauges read the cluster's own atomics at
// scrape time, so they agree with SentBytes/ReceivedBytes/TotalBytes by
// construction; creating a new cluster re-points them at the new instance
// and unregisters any higher-rank gauges left by a larger predecessor.
// Clusters with a non-empty identity (TCP peers) export under their own
// {cluster=...} label and never collide with this default family.
func NewCluster(n int) *Cluster { return NewClusterCtx(context.Background(), n) }

// NewClusterCtx is NewCluster bound to a context: when ctx is cancelled,
// every pending Send/Recv on the cluster unblocks with the context's error
// (wrapped, so errors.Is(err, context.Canceled) holds) instead of waiting
// out the deadline. This is how a cancelled simulation releases all of its
// rank goroutines promptly.
func NewClusterCtx(ctx context.Context, n int) *Cluster {
	if n < 1 {
		panic("comm: cluster needs at least one rank")
	}
	return newCluster(ctx, transport.NewInproc(n), "")
}

// NewClusterTCP creates one peer of a multi-process communicator: this
// process hosts exactly rank `rank`, and the other ranks are peer processes
// reachable at peers[i] (host:port, index = rank). Links are dialed lazily
// on first use; a peer process dying mid-exchange is detected by the
// transport and surfaces to every pending operation as ErrRankDead, exactly
// like an injected in-process rank death, so the failure-recovery paths
// built on the in-process cluster work unchanged across processes.
//
// The peer's byte gauges export under the cluster identity "tcp-r<rank>"
// (comm.sent_bytes{cluster="tcp-r0",rank="0"}, ...), so two live clusters
// in one process never clobber each other's series. Call Close when done:
// it tears down the sockets and retires the gauges.
func NewClusterTCP(ctx context.Context, rank int, peers []string) (*Cluster, error) {
	return NewClusterTCPWith(ctx, rank, peers, transport.TCPConfig{})
}

// NewClusterTCPWith is NewClusterTCP with explicit transport configuration
// (injected listener, dial timeout) — tests bind ephemeral loopback
// listeners up front this way to avoid port races.
func NewClusterTCPWith(ctx context.Context, rank int, peers []string, cfg transport.TCPConfig) (*Cluster, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr, err := transport.NewTCPWith(ctx, rank, peers, cfg)
	if err != nil {
		return nil, err
	}
	return newCluster(ctx, tr, "tcp-r"+strconv.Itoa(rank)), nil
}

// newCluster assembles a cluster on an established transport. When the
// transport has a failure mode (TCP), a watcher goroutine maps its death
// signal onto the cluster's own down channel, so transport-level peer loss
// and simulated rank death are indistinguishable to blocked operations.
func newCluster(ctx context.Context, tr transport.Transport, id string) *Cluster {
	if ctx == nil {
		ctx = context.Background()
	}
	n := tr.Size()
	c := &Cluster{n: n, ctx: ctx, tr: tr, id: id, timeout: DefaultTimeout,
		sent: make([]atomic.Int64, n), recvd: make([]atomic.Int64, n),
		ops: make([]atomic.Int64, n), down: make(chan struct{}), quit: make(chan struct{})}
	c.deadRank.Store(-1)
	for r := 0; r < n; r++ {
		if tr.Local(r) {
			c.local = append(c.local, r)
		}
	}
	registerGauges(c)
	if dead := tr.Dead(); dead != nil {
		go func() {
			select {
			case <-dead:
				c.markDead(tr.DeadRank())
			case <-c.down: // a local death got there first
			case <-c.quit:
			case <-ctx.Done():
			}
		}()
	}
	return c
}

// Close tears the cluster down: the transport's connections and goroutines
// stop (no-op for the in-process transport) and the cluster's gauge series
// are retired. Safe to call more than once. In-process clusters need no
// Close — their transport holds no resources — but calling it is harmless.
func (c *Cluster) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.quit)
		err = c.tr.Close()
		c.Unregister()
	})
	return err
}

// Unregister retires the cluster's gauge funcs (the total and the per-rank
// comm.sent_bytes/comm.recvd_bytes series of its identity) if this cluster
// is still the instance behind them. Normally a successor cluster of the
// same identity re-points the series and nothing needs retiring; call
// Unregister when a run abandons its cluster with no successor — a
// cancelled distributed job — so scrapes stop reporting a dead instance.
// Safe to call more than once and safe to call on a cluster that was
// already replaced (both are no-ops).
func (c *Cluster) Unregister() {
	rankGauges.Lock()
	defer rankGauges.Unlock()
	fam := rankGauges.families[c.id]
	if fam == nil || fam.owner != c {
		return
	}
	obs.UnregisterGaugeFunc(totalGaugeName(c.id))
	for r := 0; r < fam.n; r++ {
		obs.UnregisterGaugeFunc(gaugeName(c.id, "comm.sent_bytes", r))
		obs.UnregisterGaugeFunc(gaugeName(c.id, "comm.recvd_bytes", r))
	}
	delete(rankGauges.families, c.id)
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.n }

// Local reports whether rank r executes in this process. Every rank of an
// in-process cluster is local; a TCP cluster hosts exactly one.
func (c *Cluster) Local(r int) bool { return c.tr.Local(r) }

// LocalRanks returns the ranks this process hosts, ascending. Run spawns one
// goroutine per local rank.
func (c *Cluster) LocalRanks() []int { return append([]int(nil), c.local...) }

// MultiProcess reports whether some ranks of the cluster live in other OS
// processes (a TCP cluster). Exchange patterns that rely on shared memory
// between ranks must take their message-passing path when this is true.
func (c *Cluster) MultiProcess() bool { return len(c.local) < c.n }

// TotalBytes returns all bytes moved between distinct ranks so far, as
// accounted by this process: for an in-process cluster that is the whole
// cluster's traffic; for a TCP peer it is the local rank's sent bytes, and
// the cluster-wide total is the sum over peer processes.
func (c *Cluster) TotalBytes() int64 {
	var t int64
	for i := range c.sent {
		t += c.sent[i].Load()
	}
	return t
}

// SentBytes returns the bytes rank r has sent to other ranks.
func (c *Cluster) SentBytes(r int) int64 { return c.sent[r].Load() }

// ReceivedBytes returns the bytes rank r has actually received from other
// ranks. It is credited when Recv delivers, not when Send posts, so under
// faults (dropped or in-flight messages) sent and received totals disagree
// by exactly the undelivered volume; they match after a fault-free run
// quiesces.
func (c *Cluster) ReceivedBytes(r int) int64 { return c.recvd[r].Load() }

// Run spawns one goroutine per local rank executing fn and waits for all of
// them (an in-process cluster runs every rank; a TCP peer runs its one).
// The first error (including simulated rank failures) is returned. A rank
// that returns an error or panics marks the cluster failed, so ranks still
// blocked on it fail promptly with ErrRankDead instead of timing out.
func (c *Cluster) Run(fn func(r *Rank) error) error {
	errs := make([]error, len(c.local))
	var wg sync.WaitGroup
	for i, id := range c.local {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("comm: rank %d panicked: %v", id, p)
				}
				if errs[i] != nil {
					c.markDead(id)
				}
			}()
			errs[i] = fn(&Rank{ID: id, c: c})
		}(i, id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank is one process of the simulated cluster. Each rank lives on its own
// goroutine and owns a reusable deadline timer, so blocking operations are
// allocation-free after the first slow path.
type Rank struct {
	ID    int
	c     *Cluster
	timer *time.Timer
}

// Size returns the communicator size.
func (r *Rank) Size() int { return r.c.n }

// deadline arms the rank's reusable timer with the cluster deadline and
// returns its channel. Every arm must be followed by disarm once the
// owning select returns, whether or not the timer fired.
func (r *Rank) deadline() <-chan time.Time {
	if r.timer == nil {
		r.timer = time.NewTimer(r.c.timeout)
	} else {
		r.timer.Reset(r.c.timeout)
	}
	return r.timer.C
}

// disarm stops the deadline timer and drains a pending tick, leaving the
// timer ready for the next Reset.
func (r *Rank) disarm() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
}

// ctxErr reports the cluster context's cancellation as the error a rank
// operation returns, or nil while the context is live. The context error is
// wrapped, so callers can match it with errors.Is(err, context.Canceled).
func (c *Cluster) ctxErr(rank int) error {
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("comm: rank %d cancelled: %w", rank, err)
	}
	return nil
}

// Send transfers data to rank `to`. Self-sends are local copies and are not
// counted as communication, mirroring how MPI implementations short-circuit
// them in shared memory. Send fails with ErrRankDead as soon as any rank of
// the cluster has died, with the context error when the cluster's context is
// cancelled, and with a timeout error if the destination link stays full
// past the cluster deadline.
func (r *Rank) Send(to int, data []complex128) error {
	if to < 0 || to >= r.c.n {
		return fmt.Errorf("comm: rank %d sent to invalid rank %d", r.ID, to)
	}
	if err := r.c.ctxErr(r.ID); err != nil {
		return err
	}
	if err := r.c.faultOp(r.ID); err != nil {
		return err
	}
	counted := to != r.ID
	if counted {
		n := int64(bytesPerComplex * len(data))
		r.c.sent[r.ID].Add(n)
		obsSends.Inc()
		obsSentBytes.Add(n)
	}
	if r.c.dropMessage(r.ID, to) {
		return nil
	}
	r.c.delayMessage(r.ID, to)
	buf := append([]complex128(nil), data...)
	ch := r.c.tr.SendCh(r.ID, to)
	select {
	case ch <- buf: // fast path: link has room
		return nil
	default:
	}
	dl := r.deadline()
	select {
	case ch <- buf:
		r.disarm()
		return nil
	case <-r.c.down:
		r.disarm()
		return r.c.deadErr(r.ID)
	case <-r.c.ctx.Done():
		r.disarm()
		return r.c.ctxErr(r.ID)
	case <-dl:
		return fmt.Errorf("comm: rank %d send to %d timed out after %v (link full — protocol mismatch?)", r.ID, to, r.c.timeout)
	}
}

// Recv blocks until a message from rank `from` arrives, the cluster is
// marked failed (ErrRankDead), the cluster's context is cancelled, or the
// deadline passes.
func (r *Rank) Recv(from int) ([]complex128, error) {
	if from < 0 || from >= r.c.n {
		return nil, fmt.Errorf("comm: rank %d received from invalid rank %d", r.ID, from)
	}
	if err := r.c.ctxErr(r.ID); err != nil {
		return nil, err
	}
	if err := r.c.faultOp(r.ID); err != nil {
		return nil, err
	}
	ch := r.c.tr.RecvCh(r.ID, from)
	select {
	case data := <-ch: // fast path: already delivered
		r.creditRecv(from, data)
		return data, nil
	default:
	}
	dl := r.deadline()
	select {
	case data := <-ch:
		r.disarm()
		r.creditRecv(from, data)
		return data, nil
	case <-r.c.down:
		r.disarm()
		// Delivered-before-death beats the death signal: a peer that
		// finished its run and tore down may race its last in-flight
		// messages against the connection-loss notification, and a select
		// with both ready picks randomly. Drain first, so an exchange whose
		// data fully arrived completes instead of spuriously aborting.
		select {
		case data := <-ch:
			r.creditRecv(from, data)
			return data, nil
		default:
		}
		return nil, r.c.deadErr(r.ID)
	case <-r.c.ctx.Done():
		r.disarm()
		return nil, r.c.ctxErr(r.ID)
	case <-dl:
		return nil, fmt.Errorf("comm: rank %d recv from %d timed out after %v (deadlock or dead peer)", r.ID, from, r.c.timeout)
	}
}

// creditRecv runs the receive-side byte accounting for a delivered message.
func (r *Rank) creditRecv(from int, data []complex128) {
	if from == r.ID {
		return
	}
	n := int64(bytesPerComplex * len(data))
	r.c.recvd[r.ID].Add(n)
	obsRecvdBytes.Add(n)
}

// Bcast distributes root's data to every rank and returns each rank's copy.
func (r *Rank) Bcast(root int, data []complex128) ([]complex128, error) {
	if r.ID == root {
		for to := 0; to < r.c.n; to++ {
			if to == root {
				continue
			}
			if err := r.Send(to, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return r.Recv(root)
}

// Reduce element-wise sums every rank's contribution at root; non-root
// ranks return nil.
func (r *Rank) Reduce(root int, data []complex128) ([]complex128, error) {
	if r.ID != root {
		return nil, r.Send(root, data)
	}
	acc := append([]complex128(nil), data...)
	for from := 0; from < r.c.n; from++ {
		if from == root {
			continue
		}
		part, err := r.Recv(from)
		if err != nil {
			return nil, err
		}
		if len(part) != len(acc) {
			return nil, fmt.Errorf("comm: reduce length mismatch: %d vs %d", len(part), len(acc))
		}
		for i := range acc {
			acc[i] += part[i]
		}
	}
	return acc, nil
}

// Allreduce sums contributions on rank 0 and broadcasts the result.
func (r *Rank) Allreduce(data []complex128) ([]complex128, error) {
	acc, err := r.Reduce(0, data)
	if err != nil {
		return nil, err
	}
	return r.Bcast(0, acc)
}

// Alltoallv exchanges variable-size buffers: send[i] goes to rank i, and
// the returned slice holds what every rank sent to this one. This is the
// collective the communication-avoiding decomposition maps onto (§4.1).
func (r *Rank) Alltoallv(send [][]complex128) ([][]complex128, error) {
	if len(send) != r.c.n {
		return nil, fmt.Errorf("comm: alltoallv needs %d buffers, got %d", r.c.n, len(send))
	}
	sp := obsAlltoallv.Start()
	defer sp.End()
	// Post all sends first (buffered links decouple the phases), then
	// collect.
	for to, buf := range send {
		if err := r.Send(to, buf); err != nil {
			return nil, err
		}
	}
	out := make([][]complex128, r.c.n)
	for from := 0; from < r.c.n; from++ {
		data, err := r.Recv(from)
		if err != nil {
			return nil, err
		}
		out[from] = data
	}
	return out, nil
}

// Barrier synchronizes all ranks (zero-byte all-to-all; uncounted).
func (r *Rank) Barrier() error {
	if _, err := r.Alltoallv(make([][]complex128, r.c.n)); err != nil {
		return err
	}
	return nil
}
