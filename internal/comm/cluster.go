package comm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"negfsim/internal/obs"
)

// Exchange telemetry. The per-transfer byte accounting lives in the
// cluster's own atomics (always on — tests compare it against the §4.1
// closed-form models); the observability layer mirrors it as gauge funcs
// registered per cluster (see NewCluster) plus the global counters and the
// collective-latency timer below.
var (
	obsSends      = obs.GetCounter("comm.sends")
	obsSentBytes  = obs.GetCounter("comm.sent_bytes_total")
	obsRecvdBytes = obs.GetCounter("comm.recvd_bytes_total")
	obsAlltoallv  = obs.GetTimer("comm.alltoallv")
)

// DefaultTimeout is the per-operation deadline of a fresh cluster: the
// backstop that turns protocol mismatches and silent failures into errors
// instead of hangs. Override with Cluster.SetTimeout.
const DefaultTimeout = 10 * time.Second

// Cluster is an in-process stand-in for an MPI communicator: one goroutine
// per rank, channel links, and byte accounting on every transfer. It runs
// the simulator's real exchange patterns at reduced scale so the measured
// traffic can be checked against the closed-form models.
//
// Failures are first-class: a fault plan (InjectFaults) can kill a rank or
// tamper with messages, and the death of any rank — injected, returned as
// an error, or panicked — closes a per-cluster cancellation channel that
// unblocks every pending operation with ErrRankDead, so survivors detect
// the failure immediately rather than after the full deadline.
type Cluster struct {
	n       int
	ctx     context.Context       // caller cancellation (never nil)
	mailbox [][]chan []complex128 // mailbox[to][from]
	sent    []atomic.Int64        // bytes sent per rank
	recvd   []atomic.Int64        // bytes received per rank (credited at Recv)
	timeout time.Duration

	// Fault state (see fault.go).
	plan      *FaultPlan
	ops       []atomic.Int64 // per-rank operation counter for KillAtOp
	dropsDone atomic.Int64   // drop budget spent
	deadRank  atomic.Int64   // first dead rank id; -1 while healthy
	down      chan struct{}  // closed on first death
}

// rankGauges tracks how many per-rank gauge funcs the most recent cluster
// registered — and which cluster owns them — so NewCluster can unregister
// the tail when a smaller cluster replaces a larger one (otherwise
// comm.sent_bytes{rank="7"} would keep scraping a dead instance forever),
// and Unregister can retire the whole family when a cancelled run abandons
// its cluster with no successor.
var rankGauges struct {
	sync.Mutex
	n     int
	owner *Cluster
}

// NewCluster creates a communicator with n ranks. A Send or Recv that waits
// longer than the deadline (DefaultTimeout; configurable with SetTimeout)
// fails, so protocol mismatches surface as test errors instead of hangs.
//
// The cluster's byte counters are exported on the observability registry as
// per-rank gauges — comm.sent_bytes{rank="r"}, comm.recvd_bytes{rank="r"} —
// plus comm.total_bytes. The gauges read the cluster's own atomics at
// scrape time, so they agree with SentBytes/ReceivedBytes/TotalBytes by
// construction; creating a new cluster re-points them at the new instance
// and unregisters any higher-rank gauges left by a larger predecessor.
func NewCluster(n int) *Cluster { return NewClusterCtx(context.Background(), n) }

// NewClusterCtx is NewCluster bound to a context: when ctx is cancelled,
// every pending Send/Recv on the cluster unblocks with the context's error
// (wrapped, so errors.Is(err, context.Canceled) holds) instead of waiting
// out the deadline. This is how a cancelled simulation releases all of its
// rank goroutines promptly.
func NewClusterCtx(ctx context.Context, n int) *Cluster {
	if n < 1 {
		panic("comm: cluster needs at least one rank")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Cluster{n: n, ctx: ctx, timeout: DefaultTimeout,
		sent: make([]atomic.Int64, n), recvd: make([]atomic.Int64, n),
		ops: make([]atomic.Int64, n), down: make(chan struct{})}
	c.deadRank.Store(-1)
	c.mailbox = make([][]chan []complex128, n)
	for to := 0; to < n; to++ {
		c.mailbox[to] = make([]chan []complex128, n)
		for from := 0; from < n; from++ {
			c.mailbox[to][from] = make(chan []complex128, 64)
		}
	}
	obs.RegisterGaugeFunc("comm.total_bytes", c.TotalBytes)
	rankGauges.Lock()
	for r := 0; r < n; r++ {
		r := r
		rank := strconv.Itoa(r)
		obs.RegisterGaugeFunc(obs.Labeled("comm.sent_bytes", "rank", rank), func() int64 { return c.SentBytes(r) })
		obs.RegisterGaugeFunc(obs.Labeled("comm.recvd_bytes", "rank", rank), func() int64 { return c.ReceivedBytes(r) })
	}
	for r := n; r < rankGauges.n; r++ {
		rank := strconv.Itoa(r)
		obs.UnregisterGaugeFunc(obs.Labeled("comm.sent_bytes", "rank", rank))
		obs.UnregisterGaugeFunc(obs.Labeled("comm.recvd_bytes", "rank", rank))
	}
	rankGauges.n = n
	rankGauges.owner = c
	rankGauges.Unlock()
	return c
}

// Unregister retires the cluster's gauge funcs (comm.total_bytes and the
// per-rank comm.sent_bytes/comm.recvd_bytes series) if this cluster is still
// the instance behind them. Normally a successor cluster re-points the
// series and nothing needs retiring; call Unregister when a run abandons its
// cluster with no successor — a cancelled distributed job — so scrapes stop
// reporting a dead instance. Safe to call more than once and safe to call on
// a cluster that was already replaced (both are no-ops).
func (c *Cluster) Unregister() {
	rankGauges.Lock()
	defer rankGauges.Unlock()
	if rankGauges.owner != c {
		return
	}
	obs.UnregisterGaugeFunc("comm.total_bytes")
	for r := 0; r < rankGauges.n; r++ {
		rank := strconv.Itoa(r)
		obs.UnregisterGaugeFunc(obs.Labeled("comm.sent_bytes", "rank", rank))
		obs.UnregisterGaugeFunc(obs.Labeled("comm.recvd_bytes", "rank", rank))
	}
	rankGauges.n = 0
	rankGauges.owner = nil
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.n }

// TotalBytes returns all bytes moved between distinct ranks so far.
func (c *Cluster) TotalBytes() int64 {
	var t int64
	for i := range c.sent {
		t += c.sent[i].Load()
	}
	return t
}

// SentBytes returns the bytes rank r has sent to other ranks.
func (c *Cluster) SentBytes(r int) int64 { return c.sent[r].Load() }

// ReceivedBytes returns the bytes rank r has actually received from other
// ranks. It is credited when Recv delivers, not when Send posts, so under
// faults (dropped or in-flight messages) sent and received totals disagree
// by exactly the undelivered volume; they match after a fault-free run
// quiesces.
func (c *Cluster) ReceivedBytes(r int) int64 { return c.recvd[r].Load() }

// Run spawns one goroutine per rank executing fn and waits for all of them.
// The first error (including simulated rank failures) is returned. A rank
// that returns an error or panics marks the cluster failed, so ranks still
// blocked on it fail promptly with ErrRankDead instead of timing out.
func (c *Cluster) Run(fn func(r *Rank) error) error {
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for id := 0; id < c.n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("comm: rank %d panicked: %v", id, p)
				}
				if errs[id] != nil {
					c.markDead(id)
				}
			}()
			errs[id] = fn(&Rank{ID: id, c: c})
		}(id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank is one process of the simulated cluster. Each rank lives on its own
// goroutine and owns a reusable deadline timer, so blocking operations are
// allocation-free after the first slow path.
type Rank struct {
	ID    int
	c     *Cluster
	timer *time.Timer
}

// Size returns the communicator size.
func (r *Rank) Size() int { return r.c.n }

// deadline arms the rank's reusable timer with the cluster deadline and
// returns its channel. Every arm must be followed by disarm once the
// owning select returns, whether or not the timer fired.
func (r *Rank) deadline() <-chan time.Time {
	if r.timer == nil {
		r.timer = time.NewTimer(r.c.timeout)
	} else {
		r.timer.Reset(r.c.timeout)
	}
	return r.timer.C
}

// disarm stops the deadline timer and drains a pending tick, leaving the
// timer ready for the next Reset.
func (r *Rank) disarm() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
}

// ctxErr reports the cluster context's cancellation as the error a rank
// operation returns, or nil while the context is live. The context error is
// wrapped, so callers can match it with errors.Is(err, context.Canceled).
func (c *Cluster) ctxErr(rank int) error {
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("comm: rank %d cancelled: %w", rank, err)
	}
	return nil
}

// Send transfers data to rank `to`. Self-sends are local copies and are not
// counted as communication, mirroring how MPI implementations short-circuit
// them in shared memory. Send fails with ErrRankDead as soon as any rank of
// the cluster has died, with the context error when the cluster's context is
// cancelled, and with a timeout error if the destination mailbox stays full
// past the cluster deadline.
func (r *Rank) Send(to int, data []complex128) error {
	if to < 0 || to >= r.c.n {
		return fmt.Errorf("comm: rank %d sent to invalid rank %d", r.ID, to)
	}
	if err := r.c.ctxErr(r.ID); err != nil {
		return err
	}
	if err := r.c.faultOp(r.ID); err != nil {
		return err
	}
	counted := to != r.ID
	if counted {
		n := int64(bytesPerComplex * len(data))
		r.c.sent[r.ID].Add(n)
		obsSends.Inc()
		obsSentBytes.Add(n)
	}
	if r.c.dropMessage(r.ID, to) {
		return nil
	}
	r.c.delayMessage(r.ID, to)
	buf := append([]complex128(nil), data...)
	select {
	case r.c.mailbox[to][r.ID] <- buf: // fast path: mailbox has room
		return nil
	default:
	}
	dl := r.deadline()
	select {
	case r.c.mailbox[to][r.ID] <- buf:
		r.disarm()
		return nil
	case <-r.c.down:
		r.disarm()
		return r.c.deadErr(r.ID)
	case <-r.c.ctx.Done():
		r.disarm()
		return r.c.ctxErr(r.ID)
	case <-dl:
		return fmt.Errorf("comm: rank %d send to %d timed out after %v (mailbox full — protocol mismatch?)", r.ID, to, r.c.timeout)
	}
}

// Recv blocks until a message from rank `from` arrives, the cluster is
// marked failed (ErrRankDead), the cluster's context is cancelled, or the
// deadline passes.
func (r *Rank) Recv(from int) ([]complex128, error) {
	if from < 0 || from >= r.c.n {
		return nil, fmt.Errorf("comm: rank %d received from invalid rank %d", r.ID, from)
	}
	if err := r.c.ctxErr(r.ID); err != nil {
		return nil, err
	}
	if err := r.c.faultOp(r.ID); err != nil {
		return nil, err
	}
	select {
	case data := <-r.c.mailbox[r.ID][from]: // fast path: already delivered
		r.creditRecv(from, data)
		return data, nil
	default:
	}
	dl := r.deadline()
	select {
	case data := <-r.c.mailbox[r.ID][from]:
		r.disarm()
		r.creditRecv(from, data)
		return data, nil
	case <-r.c.down:
		r.disarm()
		return nil, r.c.deadErr(r.ID)
	case <-r.c.ctx.Done():
		r.disarm()
		return nil, r.c.ctxErr(r.ID)
	case <-dl:
		return nil, fmt.Errorf("comm: rank %d recv from %d timed out after %v (deadlock or dead peer)", r.ID, from, r.c.timeout)
	}
}

// creditRecv runs the receive-side byte accounting for a delivered message.
func (r *Rank) creditRecv(from int, data []complex128) {
	if from == r.ID {
		return
	}
	n := int64(bytesPerComplex * len(data))
	r.c.recvd[r.ID].Add(n)
	obsRecvdBytes.Add(n)
}

// Bcast distributes root's data to every rank and returns each rank's copy.
func (r *Rank) Bcast(root int, data []complex128) ([]complex128, error) {
	if r.ID == root {
		for to := 0; to < r.c.n; to++ {
			if to == root {
				continue
			}
			if err := r.Send(to, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return r.Recv(root)
}

// Reduce element-wise sums every rank's contribution at root; non-root
// ranks return nil.
func (r *Rank) Reduce(root int, data []complex128) ([]complex128, error) {
	if r.ID != root {
		return nil, r.Send(root, data)
	}
	acc := append([]complex128(nil), data...)
	for from := 0; from < r.c.n; from++ {
		if from == root {
			continue
		}
		part, err := r.Recv(from)
		if err != nil {
			return nil, err
		}
		if len(part) != len(acc) {
			return nil, fmt.Errorf("comm: reduce length mismatch: %d vs %d", len(part), len(acc))
		}
		for i := range acc {
			acc[i] += part[i]
		}
	}
	return acc, nil
}

// Allreduce sums contributions on rank 0 and broadcasts the result.
func (r *Rank) Allreduce(data []complex128) ([]complex128, error) {
	acc, err := r.Reduce(0, data)
	if err != nil {
		return nil, err
	}
	return r.Bcast(0, acc)
}

// Alltoallv exchanges variable-size buffers: send[i] goes to rank i, and
// the returned slice holds what every rank sent to this one. This is the
// collective the communication-avoiding decomposition maps onto (§4.1).
func (r *Rank) Alltoallv(send [][]complex128) ([][]complex128, error) {
	if len(send) != r.c.n {
		return nil, fmt.Errorf("comm: alltoallv needs %d buffers, got %d", r.c.n, len(send))
	}
	sp := obsAlltoallv.Start()
	defer sp.End()
	// Post all sends first (buffered mailboxes decouple the phases), then
	// collect.
	for to, buf := range send {
		if err := r.Send(to, buf); err != nil {
			return nil, err
		}
	}
	out := make([][]complex128, r.c.n)
	for from := 0; from < r.c.n; from++ {
		data, err := r.Recv(from)
		if err != nil {
			return nil, err
		}
		out[from] = data
	}
	return out, nil
}

// Barrier synchronizes all ranks (zero-byte all-to-all; uncounted).
func (r *Rank) Barrier() error {
	if _, err := r.Alltoallv(make([][]complex128, r.c.n)); err != nil {
		return err
	}
	return nil
}
