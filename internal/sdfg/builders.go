package sdfg

import (
	"fmt"
	"slices"
)

// BuildMatMul constructs the naive matrix-multiplication SDFG of Fig. 4:
// a single map over [0,M)×[0,N)×[0,K) whose tasklet accumulates
// C[i,j] += A[i,k]·B[k,j] with sum conflict resolution.
func BuildMatMul() *Program {
	p := NewProgram("matmul")
	p.AddArray("A", Complex, false, Sym("M"), Sym("K"))
	p.AddArray("B", Complex, false, Sym("K"), Sym("N"))
	p.AddArray("C", Complex, false, Sym("M"), Sym("N"))
	s := p.AddState("main")
	s.Ops = []Op{&MapOp{
		Name:   "gemm",
		Params: []string{"i", "j", "k"},
		Ranges: []Range{Span(Sym("M")), Span(Sym("N")), Span(Sym("K"))},
		Body: []Op{&Tasklet{
			Name:   "mult",
			Inputs: []Access{At("A", Sym("i"), Sym("k")), At("B", Sym("k"), Sym("j"))},
			Output: At("C", Sym("i"), Sym("j")),
			WCR:    true,
			Fn:     func(in []complex128) complex128 { return in[0] * in[1] },
		}},
	}}
	return p
}

// BuildSSESigma constructs the Σ^≷ SSE computation as the three-map state
// of Fig. 9 (the monolithic Fig. 8 map after Map Fission), scalarized to
// element tasklets. The arrays carry the paper's shapes:
//
//	G     [Nkz, NE, NA, no, no]          electron Green's function
//	dH    [NA, NB, N3D, no, no]          Hamiltonian derivative
//	Dpre  [Nqz, Nw, NA, NB, N3D, N3D]    preprocessed phonon GF
//	neigh [NA, NB]                       the f(a, b) indirection table
//	Sigma [Nkz, NE, NA, no, no]          output self-energy
//
// and the transients dHG and dHD still carry the redundant (q, w) and (j)
// dimensions that the Fig. 10 transformations remove. To keep the index
// arithmetic on-grid without modular wrap, the output ranges iterate the
// interior k ∈ [Nqz, Nkz), E ∈ [Nw, NE) — the demonstration domain.
func BuildSSESigma() *Program {
	p := NewProgram("sse_sigma")
	no := Sym("no")
	p.AddArray("G", Complex, false, Sym("Nkz"), Sym("NE"), Sym("NA"), no, no)
	p.AddArray("dH", Complex, false, Sym("NA"), Sym("NB"), Sym("N3D"), no, no)
	p.AddArray("Dpre", Complex, false, Sym("Nqz"), Sym("Nw"), Sym("NA"), Sym("NB"), Sym("N3D"), Sym("N3D"))
	p.AddArray("neigh", Int, false, Sym("NA"), Sym("NB"))
	p.AddArray("Sigma", Complex, false, Sym("Nkz"), Sym("NE"), Sym("NA"), no, no)
	p.AddArray("dHG", Complex, true, Sym("Nkz"), Sym("NE"), Sym("Nqz"), Sym("Nw"), Sym("N3D"), Sym("NA"), Sym("NB"), no, no)
	p.AddArray("dHD", Complex, true, Sym("Nqz"), Sym("Nw"), Sym("N3D"), Sym("N3D"), Sym("NA"), Sym("NB"), no, no)

	f := IndirectIndex{Table: "neigh", At: []IndexExpr{ExprIndex{Sym("a")}, ExprIndex{Sym("b")}}}
	kq := Sub(Sym("k"), Sym("q"))
	ew := Sub(Sym("E"), Sym("w"))
	interiorK := NewRange(Sym("Nqz"), Sym("Nkz"))
	interiorE := NewRange(Sym("Nw"), Sym("NE"))

	s := p.AddState("sse")
	s.Ops = []Op{
		// ∇H·G^≷ (top-left map of Fig. 9, still over the full 10-D space).
		&MapOp{
			Name:   "dHG",
			Params: []string{"k", "E", "q", "w", "i", "a", "b", "m", "p", "l"},
			Ranges: []Range{interiorK, interiorE, Span(Sym("Nqz")), Span(Sym("Nw")),
				Span(Sym("N3D")), Span(Sym("NA")), Span(Sym("NB")), Span(no), Span(no), Span(no)},
			Body: []Op{&Tasklet{
				Name: "mult_dHG",
				Inputs: []Access{
					{Array: "G", Index: []IndexExpr{ExprIndex{kq}, ExprIndex{ew}, f, ExprIndex{Sym("m")}, ExprIndex{Sym("l")}}},
					At("dH", Sym("a"), Sym("b"), Sym("i"), Sym("l"), Sym("p")),
				},
				Output: At("dHG", Sym("k"), Sym("E"), Sym("q"), Sym("w"), Sym("i"), Sym("a"), Sym("b"), Sym("m"), Sym("p")),
				WCR:    true,
				Fn:     func(in []complex128) complex128 { return in[0] * in[1] },
			}},
		},
		// ∇H·D^≷ (top-right map of Fig. 9).
		&MapOp{
			Name:   "dHD",
			Params: []string{"q", "w", "i", "j", "a", "b", "p", "n"},
			Ranges: []Range{Span(Sym("Nqz")), Span(Sym("Nw")), Span(Sym("N3D")), Span(Sym("N3D")),
				Span(Sym("NA")), Span(Sym("NB")), Span(no), Span(no)},
			Body: []Op{&Tasklet{
				Name: "scale_dHD",
				Inputs: []Access{
					At("dH", Sym("a"), Sym("b"), Sym("j"), Sym("p"), Sym("n")),
					At("Dpre", Sym("q"), Sym("w"), Sym("a"), Sym("b"), Sym("i"), Sym("j")),
				},
				Output: At("dHD", Sym("q"), Sym("w"), Sym("i"), Sym("j"), Sym("a"), Sym("b"), Sym("p"), Sym("n")),
				Fn:     func(in []complex128) complex128 { return in[0] * in[1] },
			}},
		},
		// Σ accumulation (bottom map of Fig. 9).
		&MapOp{
			Name:   "sigma",
			Params: []string{"k", "E", "q", "w", "i", "j", "a", "b", "m", "n", "p"},
			Ranges: []Range{interiorK, interiorE, Span(Sym("Nqz")), Span(Sym("Nw")),
				Span(Sym("N3D")), Span(Sym("N3D")), Span(Sym("NA")), Span(Sym("NB")),
				Span(no), Span(no), Span(no)},
			Body: []Op{&Tasklet{
				Name: "acc_sigma",
				Inputs: []Access{
					At("dHG", Sym("k"), Sym("E"), Sym("q"), Sym("w"), Sym("i"), Sym("a"), Sym("b"), Sym("m"), Sym("p")),
					At("dHD", Sym("q"), Sym("w"), Sym("i"), Sym("j"), Sym("a"), Sym("b"), Sym("p"), Sym("n")),
				},
				Output: At("Sigma", Sym("k"), Sym("E"), Sym("a"), Sym("m"), Sym("n")),
				WCR:    true,
				Fn:     func(in []complex128) complex128 { return in[0] * in[1] },
			}},
		},
	}
	return p
}

// AbsorbOffset applies the redundancy-removal transformation of Fig. 10(b)
// to the producer map m of transient `array`: map parameter `param` appears
// in m's inputs only inside the offset expression param−offsetParam, so the
// (param, offsetParam) sweep recomputes every shifted value; the map is
// rewritten to iterate the shifted value directly. Concretely:
//
//   - input subscripts param−offsetParam become param;
//   - param's range becomes the propagated range of param−offsetParam;
//   - offsetParam is removed from the map, and the output array loses the
//     dimension subscripted by it;
//   - consumers of `array` replace their subscript s_param at param's
//     dimension with s_param − s_offset and drop the offset dimension.
func AbsorbOffset(prog *Program, m *MapOp, param, offsetParam, array string) error {
	pi := slices.Index(m.Params, param)
	oi := slices.Index(m.Params, offsetParam)
	if pi < 0 || oi < 0 {
		return errf("map %q lacks parameter %q or %q", m.Name, param, offsetParam)
	}
	offExpr := Sub(Sym(param), Sym(offsetParam))
	scope := map[string]Range{param: m.Ranges[pi], offsetParam: m.Ranges[oi]}
	prop, err := PropagateExpr(offExpr, scope)
	if err != nil {
		return err
	}

	// Locate the output dimensions subscripted by param and offsetParam.
	outParamDim, outOffDim := -1, -1
	for _, op := range m.Body {
		t, ok := op.(*Tasklet)
		if !ok {
			return errf("AbsorbOffset needs a flat tasklet body")
		}
		if t.Output.Array != array {
			return errf("tasklet %q writes %q, not %q", t.Name, t.Output.Array, array)
		}
		for d, ix := range t.Output.Index {
			e, ok := ix.(ExprIndex)
			if !ok {
				continue
			}
			if se, isSym := e.E.(symExpr); isSym {
				switch string(se) {
				case param:
					outParamDim = d
				case offsetParam:
					outOffDim = d
				}
			}
		}
		// Rewrite inputs: the offset combination becomes the bare parameter.
		for i := range t.Inputs {
			for d := range t.Inputs[i].Index {
				if e, ok := t.Inputs[i].Index[d].(ExprIndex); ok {
					if e.E.String() == offExpr.String() {
						t.Inputs[i].Index[d] = ExprIndex{Sym(param)}
					} else if ContainsSym(e.E, offsetParam) {
						return errf("input of %q still depends on %q after rewrite", t.Name, offsetParam)
					}
				}
			}
		}
		// Drop the offset dimension from the output subscript.
		if outOffDim < 0 || outParamDim < 0 {
			return errf("output of %q does not index both %q and %q", t.Name, param, offsetParam)
		}
		t.Output.Index = slices.Delete(t.Output.Index, outOffDim, outOffDim+1)
	}

	// New range for param: the propagated span of the offset expression.
	m.Ranges[pi] = prop.Bounds
	m.Params = slices.Delete(m.Params, oi, oi+1)
	m.Ranges = slices.Delete(m.Ranges, oi, oi+1)

	// Shrink the array.
	arr := prog.Arrays[array]
	if arr == nil {
		return errf("unknown array %q", array)
	}
	// The param dimension is now indexed over [Lo, Hi); storage stays
	// zero-based and sized Hi so the subscripts remain valid (cells below
	// Lo are simply never touched).
	arr.Shape[outParamDim] = prop.Bounds.Hi
	arr.Shape = slices.Delete(arr.Shape, outOffDim, outOffDim+1)

	// Rewrite the consumers.
	var walk func(ops []Op, inside *MapOp)
	rewrite := func(a *Access) {
		if a.Array != array {
			return
		}
		pe, okP := a.Index[outParamDim].(ExprIndex)
		oe, okO := a.Index[outOffDim].(ExprIndex)
		if okP && okO {
			a.Index[outParamDim] = ExprIndex{Sub(pe.E, oe.E)}
		}
		a.Index = slices.Delete(a.Index, outOffDim, outOffDim+1)
	}
	walk = func(ops []Op, inside *MapOp) {
		for _, op := range ops {
			switch v := op.(type) {
			case *MapOp:
				walk(v.Body, v)
			case *Tasklet:
				if inside == m {
					continue // producer already rewritten
				}
				for i := range v.Inputs {
					rewrite(&v.Inputs[i])
				}
				if v.Output.Array == array {
					rewrite(&v.Output)
				}
			}
		}
	}
	for _, s := range prog.States {
		walk(s.Ops, nil)
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("sdfg: "+format, args...)
}
