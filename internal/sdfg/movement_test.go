package sdfg

import (
	"math/rand"
	"testing"
)

func TestMovementSummaryMatMul(t *testing.T) {
	// Fig. 4's memlet annotations: A, B read M·N·K times, C written M·N·K
	// times.
	p := BuildMatMul()
	env := Env{"M": 5, "N": 7, "K": 3}
	m, err := p.MovementSummary(env)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(5 * 7 * 3)
	if m.Reads["A"] != want || m.Reads["B"] != want || m.Writes["C"] != want {
		t.Fatalf("prediction %v / %v, want all %d", m.Reads, m.Writes, want)
	}
	// Prediction equals measurement.
	rt, err := p.Bind(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, arr := range []string{"A", "B"} {
		if rt.Reads[arr] != m.Reads[arr] {
			t.Fatalf("%s: measured %d, predicted %d", arr, rt.Reads[arr], m.Reads[arr])
		}
	}
	if rt.Writes["C"] != m.Writes["C"] {
		t.Fatalf("C: measured %d, predicted %d", rt.Writes["C"], m.Writes["C"])
	}
}

func TestMovementSummarySSE(t *testing.T) {
	// Prediction equals measurement on the real SSE program, including the
	// neighbor-table indirection reads.
	d := tinySSE()
	p := BuildSSESigma()
	m, err := p.MovementSummary(d.env())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := p.Bind(d.env())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetInt("neigh", d.neighTable()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for arr, got := range rt.Reads {
		if m.Reads[arr] != got {
			t.Fatalf("%s reads: measured %d, predicted %d", arr, got, m.Reads[arr])
		}
	}
	for arr, got := range rt.Writes {
		if m.Writes[arr] != got {
			t.Fatalf("%s writes: measured %d, predicted %d", arr, got, m.Writes[arr])
		}
	}
}

func TestMovementSummaryAfterTransformationDrops(t *testing.T) {
	// The Fig. 10 transformations must reduce predicted G traffic — the
	// quantitative statement behind "redundancy removal".
	d := tinySSE()
	base := BuildSSESigma()
	mBase, err := base.MovementSummary(d.env())
	if err != nil {
		t.Fatal(err)
	}
	p := BuildSSESigma()
	dhg := p.FindMap("dHG")
	if err := AbsorbOffset(p, dhg, "k", "q", "dHG"); err != nil {
		t.Fatal(err)
	}
	if err := AbsorbOffset(p, dhg, "E", "w", "dHG"); err != nil {
		t.Fatal(err)
	}
	mOpt, err := p.MovementSummary(d.env())
	if err != nil {
		t.Fatal(err)
	}
	if mOpt.Reads["G"] >= mBase.Reads["G"] {
		t.Fatalf("transformation should cut G reads: %d vs %d", mOpt.Reads["G"], mBase.Reads["G"])
	}
	if mOpt.Writes["dHG"] >= mBase.Writes["dHG"] {
		t.Fatalf("transformation should cut dHG writes: %d vs %d", mOpt.Writes["dHG"], mBase.Writes["dHG"])
	}
}

func TestMovementSummaryTiledFallback(t *testing.T) {
	// Tiled maps have parameter-dependent inner ranges; the iterative
	// fallback must still predict exactly (including non-divisible tiles).
	env := Env{"M": 7, "N": 5, "K": 6}
	p := BuildMatMul()
	gemm := p.FindMap("gemm")
	if _, err := TileMap(&p.States[0].Ops, gemm, "i", 3); err != nil {
		t.Fatal(err)
	}
	m, err := p.MovementSummary(env)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := p.Bind(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reads["A"] != rt.Reads["A"] || m.Writes["C"] != rt.Writes["C"] {
		t.Fatalf("tiled prediction A=%d C=%d, measured A=%d C=%d",
			m.Reads["A"], m.Writes["C"], rt.Reads["A"], rt.Writes["C"])
	}
}

func TestInterchangeMapPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const mm, nn, kk = 4, 5, 3
	a := randomComplex(rng, mm*kk)
	b := randomComplex(rng, kk*nn)
	want := runMatMul(t, BuildMatMul(), mm, nn, kk, a, b)
	p := BuildMatMul()
	gemm := p.FindMap("gemm")
	if err := InterchangeMap(gemm, 0, 2); err != nil {
		t.Fatal(err)
	}
	if gemm.Params[0] != "k" || gemm.Params[2] != "i" {
		t.Fatalf("interchange did not swap: %v", gemm.Params)
	}
	got := runMatMul(t, p, mm, nn, kk, a, b)
	complexSliceEqual(t, got, want, 1e-12, "interchanged matmul")
	if err := InterchangeMap(gemm, 0, 9); err == nil {
		t.Fatal("out-of-range interchange must fail")
	}
}
