package sdfg

import "fmt"

// Memlet propagation (§4.1): given the index expressions a tasklet uses and
// the ranges of the surrounding map parameters, compute, per array
// dimension, the interval of touched elements and the number of accesses.
// DaCe "automatically computes contiguous and strided ranges, but can only
// over-approximate some irregular accesses" — indirections return an error
// here and callers substitute a manual model (IndirectionModel).

// PropagatedDim is the propagation result for one subscript dimension.
type PropagatedDim struct {
	// Bounds is the interval of touched indices, [Lo, Hi).
	Bounds Range
	// Accesses is the number of (not necessarily unique) accesses this
	// dimension contributes: the product of the sizes of the map parameters
	// appearing in the subscript.
	Accesses Expr
}

// UniqueLength returns the number of distinct indices touched, clamped to
// the array dimension n: min(n, Hi−Lo) — e.g. min(Nkz, skz+sqz−1) for the
// kz−qz subscript in the paper.
func (d PropagatedDim) UniqueLength(n Expr) Expr {
	return MinE(n, d.Bounds.Length())
}

// PropagateExpr computes the interval an affine expression spans when its
// map parameters range over scope, plus the access count. Supported forms:
// literals, symbols (map parameters or free symbols), +, −, and
// multiplication by a literal. Free symbols are treated as fixed points.
func PropagateExpr(e Expr, scope map[string]Range) (PropagatedDim, error) {
	lo, hi, acc, err := propagate(e, scope)
	if err != nil {
		return PropagatedDim{}, err
	}
	return PropagatedDim{Bounds: Range{lo, Add(hi, Lit(1))}, Accesses: acc}, nil
}

// propagate returns the closed interval [lo, hi] spanned by e and the
// access-count product.
func propagate(e Expr, scope map[string]Range) (lo, hi, acc Expr, err error) {
	switch v := e.(type) {
	case litExpr:
		return e, e, Lit(1), nil
	case symExpr:
		if r, ok := scope[string(v)]; ok {
			return r.Lo, Sub(r.Hi, Lit(1)), r.Length(), nil
		}
		return e, e, Lit(1), nil
	case binExpr:
		alo, ahi, aacc, err := propagate(v.a, scope)
		if err != nil {
			return nil, nil, nil, err
		}
		blo, bhi, bacc, err := propagate(v.b, scope)
		if err != nil {
			return nil, nil, nil, err
		}
		switch v.op {
		case '+':
			return Add(alo, blo), Add(ahi, bhi), Mul(aacc, bacc), nil
		case '-':
			return Sub(alo, bhi), Sub(ahi, blo), Mul(aacc, bacc), nil
		case '*':
			// Only literal scaling keeps the interval affine.
			if c, ok := v.a.(litExpr); ok {
				if c >= 0 {
					return Mul(v.a, blo), Mul(v.a, bhi), bacc, nil
				}
				return Mul(v.a, bhi), Mul(v.a, blo), bacc, nil
			}
			if c, ok := v.b.(litExpr); ok {
				if c >= 0 {
					return Mul(alo, v.b), Mul(ahi, v.b), aacc, nil
				}
				return Mul(ahi, v.b), Mul(alo, v.b), aacc, nil
			}
			return nil, nil, nil, fmt.Errorf("sdfg: cannot propagate non-affine product %s", e)
		default:
			return nil, nil, nil, fmt.Errorf("sdfg: cannot propagate %s", e)
		}
	}
	return nil, nil, nil, fmt.Errorf("sdfg: cannot propagate expression %T", e)
}

// ErrIndirect marks subscripts that need a manual model.
type ErrIndirect struct{ Table string }

// Error describes which lookup table made the subscript data-dependent.
func (e ErrIndirect) Error() string {
	return fmt.Sprintf("sdfg: indirect access through %q requires a manual model", e.Table)
}

// IndirectionModel supplies the performance-engineer-provided propagation
// for a data-dependent subscript, like the paper's approximation of
// f(a, b) over an atom tile: [max(0, ta·sa − NB/2), min(NA, (ta+1)·sa + NB/2)).
type IndirectionModel func(ind IndirectIndex, scope map[string]Range) (PropagatedDim, error)

// PropagateAccess propagates a full access through a scope. Indirect
// dimensions are resolved by model (which may be nil, in which case they
// error out).
func PropagateAccess(a Access, scope map[string]Range, model IndirectionModel) ([]PropagatedDim, error) {
	out := make([]PropagatedDim, len(a.Index))
	for d, ix := range a.Index {
		switch v := ix.(type) {
		case ExprIndex:
			p, err := PropagateExpr(v.E, scope)
			if err != nil {
				return nil, fmt.Errorf("dim %d: %w", d, err)
			}
			out[d] = p
		case IndirectIndex:
			if model == nil {
				return nil, ErrIndirect{v.Table}
			}
			p, err := model(v, scope)
			if err != nil {
				return nil, fmt.Errorf("dim %d: %w", d, err)
			}
			out[d] = p
		}
	}
	return out, nil
}

// NeighborIndirectionModel returns the paper's manual model for the
// neighbor indirection f(a, b): propagated over an atom-tile parameter
// (named atomParam) of size sa with NB neighbors per atom, the touched
// range is [ta·sa − NB/2, (ta+1)·sa + NB/2) clamped to [0, NA), with sa·NB
// total accesses and min(NA, sa + NB) unique indices (§4.1).
func NeighborIndirectionModel(atomParam string, na, nb Expr) IndirectionModel {
	return func(ind IndirectIndex, scope map[string]Range) (PropagatedDim, error) {
		r, ok := scope[atomParam]
		if !ok {
			return PropagatedDim{}, fmt.Errorf("sdfg: neighbor model: %q not in scope", atomParam)
		}
		half := Div(nb, Lit(2))
		lo := MaxE(Lit(0), Sub(r.Lo, half))
		hi := MinE(na, Add(r.Hi, half))
		return PropagatedDim{
			Bounds:   Range{lo, hi},
			Accesses: Mul(r.Length(), nb),
		}, nil
	}
}
