package sdfg

import (
	"fmt"
	"slices"
)

// Movement prediction: the "summed symbolic expressions" of Fig. 4 — for
// every array, how many element accesses a program performs, computed from
// the map structure without executing any tasklet. This is the quantity
// the paper's §4.1 methodology minimizes; tests validate the prediction
// against the interpreter's measured counters.

// Movement is the predicted element-access totals of one program run.
type Movement struct {
	Reads, Writes map[string]int64
}

// MovementSummary predicts per-array access counts under the given symbol
// bindings. Maps whose ranges are independent of enclosing parameters are
// counted in closed form (domain size × accesses inside); dependent ranges
// (e.g. after tiling) are handled by iterating the enclosing domain.
func (p *Program) MovementSummary(env Env) (*Movement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Movement{Reads: map[string]int64{}, Writes: map[string]int64{}}
	scope := Env{}
	for k, v := range env {
		scope[k] = v
	}
	for _, st := range p.States {
		if err := countOps(st.Ops, scope, 1, m); err != nil {
			return nil, fmt.Errorf("state %q: %w", st.Name, err)
		}
	}
	return m, nil
}

// rangesIndependent reports whether every range of the map can be evaluated
// in the current scope without binding the map's own parameters (they never
// can reference their own scope's params in a valid SDFG, so this detects
// dependence on *enclosing* parameters that are not yet bound).
func rangesIndependent(mp *MapOp, scope Env) bool {
	for _, r := range mp.Ranges {
		if !evalOK(r.Lo, scope) || !evalOK(r.Hi, scope) {
			return false
		}
	}
	return true
}

func evalOK(e Expr, env Env) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	e.Eval(env)
	return true
}

func countOps(ops []Op, scope Env, mult int64, m *Movement) error {
	for _, op := range ops {
		switch v := op.(type) {
		case *MapOp:
			if err := countMap(v, scope, mult, m); err != nil {
				return err
			}
		case *Tasklet:
			for _, in := range v.Inputs {
				m.Reads[in.Array] += mult
				countIndirections(in.Index, mult, m)
			}
			m.Writes[v.Output.Array] += mult
			countIndirections(v.Output.Index, mult, m)
		default:
			return fmt.Errorf("sdfg: unknown op %T", op)
		}
	}
	return nil
}

func countIndirections(idx []IndexExpr, mult int64, m *Movement) {
	for _, ix := range idx {
		if ind, ok := ix.(IndirectIndex); ok {
			m.Reads[ind.Table] += mult
			countIndirections(ind.At, mult, m)
		}
	}
}

func countMap(mp *MapOp, scope Env, mult int64, m *Movement) error {
	if rangesIndependent(mp, scope) {
		// Closed form: multiply by the domain volume. Body ranges may still
		// depend on this map's params, so bind representative values? No —
		// recurse with the params bound to their lower bounds only if the
		// body is itself independent; otherwise fall through to iteration.
		volume := int64(1)
		for _, r := range mp.Ranges {
			l := r.Length().Eval(scope)
			if l < 0 {
				l = 0
			}
			volume *= l
		}
		if volume == 0 {
			return nil
		}
		if bodyIndependent(mp.Body, scope, mp.Params) {
			return countOps(mp.Body, scope, mult*volume, m)
		}
	}
	// Iterative fallback: walk the domain (used for tiled maps whose inner
	// ranges depend on the tile parameter).
	lows := make([]int64, len(mp.Params))
	highs := make([]int64, len(mp.Params))
	// Ranges may depend on outer params already in scope.
	for i, r := range mp.Ranges {
		if !evalOK(r.Lo, scope) || !evalOK(r.Hi, scope) {
			return fmt.Errorf("sdfg: cannot bound map %q range %d in scope", mp.Name, i)
		}
		lows[i] = r.Lo.Eval(scope)
		highs[i] = r.Hi.Eval(scope)
		if highs[i] <= lows[i] {
			return nil
		}
	}
	idx := slices.Clone(lows)
	saved := make([]int64, len(mp.Params))
	had := make([]bool, len(mp.Params))
	for i, p := range mp.Params {
		saved[i], had[i] = scope[p]
	}
	defer func() {
		for i, p := range mp.Params {
			if had[i] {
				scope[p] = saved[i]
			} else {
				delete(scope, p)
			}
		}
	}()
	for {
		for i, p := range mp.Params {
			scope[p] = idx[i]
		}
		// Inner ranges are re-evaluated under the bound params.
		if err := countOps(mp.Body, scope, mult, m); err != nil {
			return err
		}
		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < highs[d] {
				break
			}
			idx[d] = lows[d]
			// Re-evaluate this dimension's bounds? Not needed: bounds of a
			// single map cannot depend on its own parameters.
		}
		if d < 0 {
			return nil
		}
	}
}

// bodyIndependent reports whether nested map ranges avoid the given params
// (then the closed-form volume multiplication is exact).
func bodyIndependent(ops []Op, scope Env, params []string) bool {
	for _, op := range ops {
		if mp, ok := op.(*MapOp); ok {
			for _, r := range mp.Ranges {
				for _, p := range params {
					if ContainsSym(r.Lo, p) || ContainsSym(r.Hi, p) {
						return false
					}
				}
			}
			if !bodyIndependent(mp.Body, scope, params) {
				return false
			}
		}
	}
	return true
}

// InterchangeMap swaps two parameters of a map — the loop-interchange
// transformation, legal for any map since the iteration domain is a
// Cartesian product and map semantics are order-free.
func InterchangeMap(m *MapOp, i, j int) error {
	if i < 0 || j < 0 || i >= len(m.Params) || j >= len(m.Params) {
		return fmt.Errorf("sdfg: interchange positions (%d, %d) out of range for map %q", i, j, m.Name)
	}
	m.Params[i], m.Params[j] = m.Params[j], m.Params[i]
	m.Ranges[i], m.Ranges[j] = m.Ranges[j], m.Ranges[i]
	return nil
}
