package sdfg

import (
	"fmt"
	"sort"
	"strings"
)

// Rendering: a hierarchical text description and a Graphviz DOT export of a
// program, for inspecting graphs before and after transformation (the
// workflow Fig. 3 depicts: the performance engineer looks at the SDFG).

// Describe returns an indented textual rendering of the program.
func (p *Program) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SDFG %q: %d nodes\n", p.Name, p.CountNodes())
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.Arrays[n]
		kind := "array"
		if a.Transient {
			kind = "transient"
		}
		typ := "complex128"
		if a.Type == Int {
			typ = "int64"
		}
		fmt.Fprintf(&b, "  %-9s %-8s %s%s\n", kind, typ, n, shapeString(a.Shape))
	}
	for _, st := range p.States {
		fmt.Fprintf(&b, "state %q:\n", st.Name)
		describeOps(&b, st.Ops, 1)
	}
	return b.String()
}

func shapeString(shape []Expr) string {
	parts := make([]string, len(shape))
	for i, e := range shape {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func describeOps(b *strings.Builder, ops []Op, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, op := range ops {
		switch v := op.(type) {
		case *MapOp:
			var dims []string
			for i, p := range v.Params {
				dims = append(dims, fmt.Sprintf("%s ∈ %s", p, v.Ranges[i]))
			}
			fmt.Fprintf(b, "%smap %q [%s]\n", ind, v.Name, strings.Join(dims, ", "))
			describeOps(b, v.Body, depth+1)
		case *Tasklet:
			var ins []string
			for _, in := range v.Inputs {
				ins = append(ins, accessString(in))
			}
			wcr := ""
			if v.WCR {
				wcr = " (CR: Sum)"
			}
			fmt.Fprintf(b, "%stasklet %q: %s → %s%s\n", ind, v.Name,
				strings.Join(ins, ", "), accessString(v.Output), wcr)
		}
	}
}

func accessString(a Access) string {
	parts := make([]string, len(a.Index))
	for i, ix := range a.Index {
		parts[i] = indexString(ix)
	}
	return a.Array + "[" + strings.Join(parts, ", ") + "]"
}

func indexString(ix IndexExpr) string {
	switch v := ix.(type) {
	case ExprIndex:
		return v.E.String()
	case IndirectIndex:
		parts := make([]string, len(v.At))
		for i, sub := range v.At {
			parts[i] = indexString(sub)
		}
		return v.Table + "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// DOT renders the program as a Graphviz digraph: data nodes as ellipses,
// maps as trapezium clusters, tasklets as octagons, memlets as labeled
// edges (Fig. 3's syntax).
func (p *Program) DOT() string {
	var b strings.Builder
	b.WriteString("digraph sdfg {\n  rankdir=TB;\n  node [fontsize=10];\n")
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		style := "solid"
		if p.Arrays[n].Transient {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q [shape=ellipse style=%s label=\"%s%s\"];\n",
			"arr_"+n, style, n, shapeString(p.Arrays[n].Shape))
	}
	id := 0
	for si, st := range p.States {
		fmt.Fprintf(&b, "  subgraph cluster_state%d {\n    label=%q;\n", si, st.Name)
		dotOps(&b, st.Ops, &id)
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func dotOps(b *strings.Builder, ops []Op, id *int) {
	for _, op := range ops {
		switch v := op.(type) {
		case *MapOp:
			*id++
			fmt.Fprintf(b, "    subgraph cluster_map%d {\n      label=\"map %s [%s]\";\n      style=rounded;\n",
				*id, v.Name, strings.Join(v.Params, ", "))
			dotOps(b, v.Body, id)
			b.WriteString("    }\n")
		case *Tasklet:
			*id++
			tn := fmt.Sprintf("tasklet%d", *id)
			fmt.Fprintf(b, "      %q [shape=octagon label=%q];\n", tn, v.Name)
			for _, in := range v.Inputs {
				fmt.Fprintf(b, "      %q -> %q [label=%q fontsize=8];\n",
					"arr_"+in.Array, tn, accessString(in))
			}
			lbl := accessString(v.Output)
			if v.WCR {
				lbl += " (CR: Sum)"
			}
			fmt.Fprintf(b, "      %q -> %q [label=%q fontsize=8 style=dashed];\n",
				tn, "arr_"+v.Output.Array, lbl)
		}
	}
}
