package sdfg

import "testing"

func TestExprEval(t *testing.T) {
	env := Env{"x": 7, "y": 3}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Lit(5), 5},
		{Sym("x"), 7},
		{Add(Sym("x"), Sym("y")), 10},
		{Sub(Sym("x"), Sym("y")), 4},
		{Mul(Sym("x"), Sym("y")), 21},
		{Div(Sym("x"), Sym("y")), 2},
		{Div(Lit(-7), Lit(2)), -4}, // floor division
		{MinE(Sym("x"), Sym("y")), 3},
		{MaxE(Sym("x"), Sym("y")), 7},
	}
	for _, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Fatalf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestExprFolding(t *testing.T) {
	if Add(Lit(2), Lit(3)).String() != "5" {
		t.Fatal("constant folding of +")
	}
	if Add(Sym("x"), Lit(0)).String() != "x" {
		t.Fatal("x+0 should fold to x")
	}
	if Mul(Sym("x"), Lit(1)).String() != "x" {
		t.Fatal("x·1 should fold to x")
	}
	if Mul(Sym("x"), Lit(0)).String() != "0" {
		t.Fatal("x·0 should fold to 0")
	}
	if Sub(Sym("x"), Lit(0)).String() != "x" {
		t.Fatal("x−0 should fold to x")
	}
	if Div(Sym("x"), Lit(1)).String() != "x" {
		t.Fatal("x/1 should fold to x")
	}
	if MinE(Lit(2), Lit(5)).String() != "2" || MaxE(Lit(2), Lit(5)).String() != "5" {
		t.Fatal("min/max literal folding")
	}
}

func TestUnboundSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbound symbol")
		}
	}()
	Sym("nope").Eval(Env{})
}

func TestContainsAndSubst(t *testing.T) {
	e := Add(Sub(Sym("k"), Sym("q")), Mul(Lit(2), Sym("E")))
	if !ContainsSym(e, "k") || !ContainsSym(e, "E") || ContainsSym(e, "z") {
		t.Fatal("ContainsSym wrong")
	}
	s := SubstSym(e, "q", Lit(0))
	if ContainsSym(s, "q") {
		t.Fatal("substitution left the symbol behind")
	}
	if got := s.Eval(Env{"k": 5, "E": 2}); got != 9 {
		t.Fatalf("substituted eval = %d, want 9", got)
	}
	m := SubstSym(MinE(Sym("q"), Lit(7)), "q", Lit(3))
	if got := m.Eval(Env{}); got != 3 {
		t.Fatalf("min substitution = %d", got)
	}
}

func TestRange(t *testing.T) {
	r := Span(Sym("N"))
	if got := r.Length().Eval(Env{"N": 12}); got != 12 {
		t.Fatalf("span length = %d", got)
	}
	r2 := NewRange(Lit(3), Lit(10))
	if got := r2.Length().Eval(nil); got != 7 {
		t.Fatalf("range length = %d", got)
	}
	if r2.String() != "[3, 10)" {
		t.Fatalf("range string %q", r2.String())
	}
}

func TestPropagateExprPaperFormula(t *testing.T) {
	// §4.1: propagating kz−qz over the tile ranges
	// kz ∈ [tk·sk, (tk+1)·sk), qz ∈ [tq·sq, (tq+1)·sq) yields
	// [tk·sk − (tq+1)·sq + 1, (tk+1)·sk − tq·sq), with sk+sq−1 accesses.
	sk, sq := Sym("sk"), Sym("sq")
	tk, tq := Sym("tk"), Sym("tq")
	scope := map[string]Range{
		"kz": {Mul(tk, sk), Mul(Add(tk, Lit(1)), sk)},
		"qz": {Mul(tq, sq), Mul(Add(tq, Lit(1)), sq)},
	}
	p, err := PropagateExpr(Sub(Sym("kz"), Sym("qz")), scope)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{"sk": 4, "sq": 3, "tk": 2, "tq": 1}
	if got, want := p.Bounds.Lo.Eval(env), int64(2*4-(1+1)*3+1); got != want {
		t.Fatalf("lower bound %d, want %d", got, want)
	}
	if got, want := p.Bounds.Hi.Eval(env), int64((2+1)*4-1*3); got != want {
		t.Fatalf("upper bound %d, want %d", got, want)
	}
	if got, want := p.Bounds.Length().Eval(env), int64(4+3-1); got != want {
		t.Fatalf("length %d, want sk+sq−1 = %d", got, want)
	}
	if got, want := p.Accesses.Eval(env), int64(4*3); got != want {
		t.Fatalf("accesses %d, want sk·sq = %d", got, want)
	}
	// Unique accesses clamp to the array size: min(Nkz, sk+sq−1).
	if got := p.UniqueLength(Sym("Nkz")).Eval(Env{"sk": 4, "sq": 3, "tk": 0, "tq": 0, "Nkz": 5}); got != 5 {
		t.Fatalf("unique length clamped = %d, want 5", got)
	}
}

func TestPropagateNonAffineRejected(t *testing.T) {
	scope := map[string]Range{"i": {Lit(0), Lit(4)}, "j": {Lit(0), Lit(4)}}
	if _, err := PropagateExpr(Mul(Sym("i"), Sym("j")), scope); err == nil {
		t.Fatal("expected error for i·j")
	}
}

func TestNeighborIndirectionModel(t *testing.T) {
	// §4.1: f(a, b) over an atom tile of size sa with NB neighbors touches
	// [ta·sa − NB/2, (ta+1)·sa + NB/2) ∩ [0, NA), sa·NB accesses,
	// min(NA, sa + NB) unique.
	model := NeighborIndirectionModel("a", Sym("NA"), Sym("NB"))
	scope := map[string]Range{"a": {Mul(Sym("ta"), Sym("sa")), Mul(Add(Sym("ta"), Lit(1)), Sym("sa"))}}
	p, err := model(IndirectIndex{Table: "neigh"}, scope)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{"ta": 2, "sa": 100, "NA": 1000, "NB": 34}
	if got := p.Bounds.Lo.Eval(env); got != 200-17 {
		t.Fatalf("lo = %d", got)
	}
	if got := p.Bounds.Hi.Eval(env); got != 300+17 {
		t.Fatalf("hi = %d", got)
	}
	if got := p.Accesses.Eval(env); got != 100*34 {
		t.Fatalf("accesses = %d", got)
	}
	// Clamping at the structure edge.
	env["ta"] = 0
	if got := p.Bounds.Lo.Eval(env); got != 0 {
		t.Fatalf("unclamped lower edge: %d", got)
	}
}
