package sdfg

import (
	"strings"
	"testing"
)

func TestDescribeContainsStructure(t *testing.T) {
	out := BuildSSESigma().Describe()
	for _, want := range []string{
		`SDFG "sse_sigma": 6 nodes`,
		"transient", "dHG", "dHD",
		`map "dHG"`, `map "sigma"`,
		"(CR: Sum)",
		"neigh[a, b]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTWellFormed(t *testing.T) {
	dot := BuildMatMul().DOT()
	for _, want := range []string{
		"digraph sdfg {",
		`"arr_A"`, `"arr_B"`, `"arr_C"`,
		"shape=octagon",
		"cluster_map",
		"(CR: Sum)",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestDescribeTransformedGraphShrinks(t *testing.T) {
	p := BuildSSESigma()
	m := p.FindMap("dHG")
	if err := AbsorbOffset(p, m, "k", "q", "dHG"); err != nil {
		t.Fatal(err)
	}
	out := p.Describe()
	// The dHG map's parameter list no longer contains q.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `map "dHG"`) && strings.Contains(line, "q ∈") {
			t.Fatalf("q still in transformed map: %s", line)
		}
	}
}
