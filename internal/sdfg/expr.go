// Package sdfg implements a Stateful DataFlow multiGraph intermediate
// representation in the spirit of DaCe (§3 of the paper): programs are
// states containing parametric map scopes and tasklets connected by memlets
// with symbolic index expressions. The package provides
//
//   - symbolic integer expressions (this file) used for array shapes, map
//     ranges and memlet indices;
//   - an executable graph (graph.go, interp.go) so that transformed
//     programs can be checked to compute exactly what the original did;
//   - memlet propagation (propagate.go), the §4.1 machinery that turns
//     per-iteration accesses into per-scope data-movement requirements;
//   - graph transformations (transform.go): map tiling, expansion, fission,
//     fusion, redundancy removal and data-layout changes — the toolkit used
//     in §4.2 to derive the optimized SSE kernel.
package sdfg

import (
	"fmt"
	"strconv"
)

// Env binds symbol names to integer values for expression evaluation.
type Env map[string]int64

// Expr is a symbolic integer expression.
type Expr interface {
	// Eval computes the expression under the given bindings; it panics on
	// unbound symbols (programming error at call sites).
	Eval(env Env) int64
	String() string
}

type litExpr int64

// Lit returns a literal integer expression.
func Lit(v int64) Expr { return litExpr(v) }

func (l litExpr) Eval(Env) int64 { return int64(l) }
func (l litExpr) String() string { return strconv.FormatInt(int64(l), 10) }

type symExpr string

// Sym returns a symbol reference expression.
func Sym(name string) Expr { return symExpr(name) }

func (s symExpr) Eval(env Env) int64 {
	v, ok := env[string(s)]
	if !ok {
		panic(fmt.Sprintf("sdfg: unbound symbol %q", string(s)))
	}
	return v
}
func (s symExpr) String() string { return string(s) }

type binExpr struct {
	op   byte // '+', '-', '*', '/'
	a, b Expr
}

func (e binExpr) Eval(env Env) int64 {
	a, b := e.a.Eval(env), e.b.Eval(env)
	switch e.op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		if b == 0 {
			panic("sdfg: division by zero")
		}
		// Floor division, matching symbolic tiling arithmetic.
		q := a / b
		if (a%b != 0) && ((a < 0) != (b < 0)) {
			q--
		}
		return q
	}
	panic("sdfg: unknown operator")
}

func (e binExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", e.a, e.op, e.b)
}

func fold(op byte, a, b Expr) (Expr, bool) {
	la, oka := a.(litExpr)
	lb, okb := b.(litExpr)
	if oka && okb {
		return Lit(binExpr{op, a, b}.Eval(nil)), true
	}
	switch op {
	case '+':
		if oka && la == 0 {
			return b, true
		}
		if okb && lb == 0 {
			return a, true
		}
	case '-':
		if okb && lb == 0 {
			return a, true
		}
	case '*':
		if oka && la == 1 {
			return b, true
		}
		if okb && lb == 1 {
			return a, true
		}
		if (oka && la == 0) || (okb && lb == 0) {
			return Lit(0), true
		}
	case '/':
		if okb && lb == 1 {
			return a, true
		}
	}
	return nil, false
}

func makeBin(op byte, a, b Expr) Expr {
	if e, ok := fold(op, a, b); ok {
		return e
	}
	return binExpr{op, a, b}
}

// Add returns a+b with constant folding.
func Add(a, b Expr) Expr { return makeBin('+', a, b) }

// Sub returns a−b with constant folding.
func Sub(a, b Expr) Expr { return makeBin('-', a, b) }

// Mul returns a·b with constant folding.
func Mul(a, b Expr) Expr { return makeBin('*', a, b) }

// Div returns floor(a/b) with constant folding.
func Div(a, b Expr) Expr { return makeBin('/', a, b) }

type minMaxExpr struct {
	isMin bool
	a, b  Expr
}

func (e minMaxExpr) Eval(env Env) int64 {
	a, b := e.a.Eval(env), e.b.Eval(env)
	if (a < b) == e.isMin {
		return a
	}
	return b
}

func (e minMaxExpr) String() string {
	name := "max"
	if e.isMin {
		name = "min"
	}
	return fmt.Sprintf("%s(%s, %s)", name, e.a, e.b)
}

// MinE returns min(a, b); folded when both are literals.
func MinE(a, b Expr) Expr {
	if la, ok := a.(litExpr); ok {
		if lb, ok := b.(litExpr); ok {
			if la < lb {
				return a
			}
			return b
		}
	}
	return minMaxExpr{true, a, b}
}

// MaxE returns max(a, b); folded when both are literals.
func MaxE(a, b Expr) Expr {
	if la, ok := a.(litExpr); ok {
		if lb, ok := b.(litExpr); ok {
			if la > lb {
				return a
			}
			return b
		}
	}
	return minMaxExpr{false, a, b}
}

// Range is a half-open symbolic interval [Lo, Hi).
type Range struct{ Lo, Hi Expr }

// NewRange builds a range from two expressions.
func NewRange(lo, hi Expr) Range { return Range{lo, hi} }

// Span builds the range [0, n).
func Span(n Expr) Range { return Range{Lit(0), n} }

// Length returns Hi − Lo.
func (r Range) Length() Expr { return Sub(r.Hi, r.Lo) }

// String renders the range in half-open interval notation.
func (r Range) String() string { return fmt.Sprintf("[%s, %s)", r.Lo, r.Hi) }

// ContainsSym reports whether the expression tree references symbol name.
func ContainsSym(e Expr, name string) bool {
	switch v := e.(type) {
	case symExpr:
		return string(v) == name
	case binExpr:
		return ContainsSym(v.a, name) || ContainsSym(v.b, name)
	case minMaxExpr:
		return ContainsSym(v.a, name) || ContainsSym(v.b, name)
	}
	return false
}

// SubstSym replaces every occurrence of symbol name with repl.
func SubstSym(e Expr, name string, repl Expr) Expr {
	switch v := e.(type) {
	case symExpr:
		if string(v) == name {
			return repl
		}
		return e
	case binExpr:
		return makeBin(v.op, SubstSym(v.a, name, repl), SubstSym(v.b, name, repl))
	case minMaxExpr:
		if v.isMin {
			return MinE(SubstSym(v.a, name, repl), SubstSym(v.b, name, repl))
		}
		return MaxE(SubstSym(v.a, name, repl), SubstSym(v.b, name, repl))
	}
	return e
}
