package sdfg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// --- semantics-preservation helpers -----------------------------------------

func complexSliceEqual(t *testing.T, got, want []complex128, tol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: element %d differs: %v vs %v", what, i, got[i], want[i])
		}
	}
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return out
}

// --- map tiling --------------------------------------------------------------

func TestTileMapPreservesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const m, n, k = 7, 5, 6 // deliberately not divisible by the tile size
	a := randomComplex(rng, m*k)
	b := randomComplex(rng, k*n)
	want := runMatMul(t, BuildMatMul(), m, n, k, a, b)

	p := BuildMatMul()
	gemm := p.FindMap("gemm")
	outer, err := TileMap(&p.States[0].Ops, gemm, "i", 3)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Params[0] != "ti" {
		t.Fatalf("tile parameter %q, want ti", outer.Params[0])
	}
	got := runMatMul(t, p, m, n, k, a, b)
	complexSliceEqual(t, got, want, 1e-12, "tiled matmul")

	// Tiling twice (i and j) still preserves the result.
	p2 := BuildMatMul()
	g2 := p2.FindMap("gemm")
	o2, err := TileMap(&p2.States[0].Ops, g2, "i", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TileMap(&o2.Body, g2, "j", 4); err != nil {
		t.Fatal(err)
	}
	got2 := runMatMul(t, p2, m, n, k, a, b)
	complexSliceEqual(t, got2, want, 1e-12, "doubly tiled matmul")
}

func TestTileMapErrors(t *testing.T) {
	p := BuildMatMul()
	gemm := p.FindMap("gemm")
	if _, err := TileMap(&p.States[0].Ops, gemm, "zz", 3); err == nil {
		t.Fatal("unknown parameter must fail")
	}
	other := &MapOp{Name: "other"}
	if _, err := TileMap(&p.States[0].Ops, other, "i", 3); err == nil {
		t.Fatal("map not in parent must fail")
	}
}

// --- map expansion -----------------------------------------------------------

func TestExpandMapPreservesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, n, k = 4, 4, 4
	a := randomComplex(rng, m*k)
	b := randomComplex(rng, k*n)
	want := runMatMul(t, BuildMatMul(), m, n, k, a, b)

	p := BuildMatMul()
	gemm := p.FindMap("gemm")
	inner, err := ExpandMap(gemm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gemm.Params) != 2 || len(inner.Params) != 1 || inner.Params[0] != "k" {
		t.Fatalf("expansion shape wrong: outer %v inner %v", gemm.Params, inner.Params)
	}
	got := runMatMul(t, p, m, n, k, a, b)
	complexSliceEqual(t, got, want, 1e-12, "expanded matmul")

	if _, err := ExpandMap(gemm, 5); err == nil {
		t.Fatal("out-of-range expansion point must fail")
	}
}

// --- map fission / fusion ----------------------------------------------------

// buildTwoStage returns a single map with two tasklets communicating through
// a transient: T[i,j] = A[i,j]², then Out[i] += T[i,j]·B[j] (WCR over j).
func buildTwoStage() *Program {
	p := NewProgram("twostage")
	p.AddArray("A", Complex, false, Sym("N"), Sym("M"))
	p.AddArray("B", Complex, false, Sym("M"))
	p.AddArray("T", Complex, true, Sym("N"), Sym("M"))
	p.AddArray("Out", Complex, false, Sym("N"))
	s := p.AddState("s")
	s.Ops = []Op{&MapOp{
		Name:   "stage",
		Params: []string{"i", "j"},
		Ranges: []Range{Span(Sym("N")), Span(Sym("M"))},
		Body: []Op{
			&Tasklet{Name: "square",
				Inputs: []Access{At("A", Sym("i"), Sym("j"))},
				Output: At("T", Sym("i"), Sym("j")),
				Fn:     func(in []complex128) complex128 { return in[0] * in[0] }},
			&Tasklet{Name: "reduce",
				Inputs: []Access{At("T", Sym("i"), Sym("j")), At("B", Sym("j"))},
				Output: At("Out", Sym("i")),
				WCR:    true,
				Fn:     func(in []complex128) complex128 { return in[0] * in[1] }},
		},
	}}
	return p
}

func runTwoStage(t *testing.T, p *Program, n, m int64, a, b []complex128) []complex128 {
	t.Helper()
	rt, err := p.Bind(Env{"N": n, "M": m})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetComplex("A", a); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetComplex("B", b); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt.Complex("Out")
}

func TestFissionThenFusionPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, m = 5, 7
	a := randomComplex(rng, n*m)
	b := randomComplex(rng, m)
	want := runTwoStage(t, buildTwoStage(), n, m, a, b)

	p := buildTwoStage()
	stage := p.FindMap("stage")
	maps, err := FissionMap(&p.States[0].Ops, stage)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 2 {
		t.Fatalf("fission produced %d maps, want 2", len(maps))
	}
	got := runTwoStage(t, p, n, m, a, b)
	complexSliceEqual(t, got, want, 1e-12, "fissioned")

	// Both tasklets here use both params, so fusing back is legal.
	fused, err := FuseMaps(&p.States[0].Ops, maps[0], maps[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Body) != 2 {
		t.Fatalf("fused body has %d ops", len(fused.Body))
	}
	got2 := runTwoStage(t, p, n, m, a, b)
	complexSliceEqual(t, got2, want, 1e-12, "re-fused")
}

func TestFissionDropsUnusedParams(t *testing.T) {
	// Like Fig. 9: after fission, each map keeps only the parameters its
	// tasklet references. The "square" tasklet in a 3-param map ignores k.
	p := NewProgram("drop")
	p.AddArray("A", Complex, false, Sym("N"))
	p.AddArray("T", Complex, true, Sym("N"))
	p.AddArray("Out", Complex, false, Sym("N"), Sym("K"))
	s := p.AddState("s")
	s.Ops = []Op{&MapOp{
		Name:   "m",
		Params: []string{"i", "k"},
		Ranges: []Range{Span(Sym("N")), Span(Sym("K"))},
		Body: []Op{
			&Tasklet{Name: "square", Inputs: []Access{At("A", Sym("i"))}, Output: At("T", Sym("i")),
				Fn: func(in []complex128) complex128 { return in[0] * in[0] }},
			&Tasklet{Name: "emit", Inputs: []Access{At("T", Sym("i"))}, Output: At("Out", Sym("i"), Sym("k")),
				Fn: func(in []complex128) complex128 { return in[0] }},
		},
	}}
	maps, err := FissionMap(&p.States[0].Ops, p.FindMap("m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(maps[0].Params) != 1 || maps[0].Params[0] != "i" {
		t.Fatalf("first fissioned map params %v, want [i]", maps[0].Params)
	}
	if len(maps[1].Params) != 2 {
		t.Fatalf("second fissioned map params %v, want [i k]", maps[1].Params)
	}
	rt, err := p.Bind(Env{"N": 3, "K": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetComplex("A", []complex128{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	out := rt.Complex("Out")
	wantOut := []complex128{1, 1, 4, 4, 9, 9}
	complexSliceEqual(t, out, wantOut, 0, "dropped-param program")
}

func TestFuseMapsRejectsMismatch(t *testing.T) {
	p := buildTwoStage()
	stage := p.FindMap("stage")
	maps, err := FissionMap(&p.States[0].Ops, stage)
	if err != nil {
		t.Fatal(err)
	}
	maps[1].Ranges[1] = Span(Lit(3))
	if _, err := FuseMaps(&p.States[0].Ops, maps[0], maps[1]); err == nil {
		t.Fatal("range mismatch must fail fusion")
	}
}

// --- redundancy removal ------------------------------------------------------

func TestRedundancyRemoval(t *testing.T) {
	// A map computing the same value for every r, written at output dim r:
	// removal drops the parameter, shrinks the transient, and rewrites the
	// downstream reader.
	build := func() *Program {
		p := NewProgram("red")
		p.AddArray("A", Complex, false, Sym("N"))
		p.AddArray("T", Complex, true, Sym("N"), Sym("R"))
		p.AddArray("Out", Complex, false, Sym("N"), Sym("R"))
		s := p.AddState("s")
		s.Ops = []Op{
			&MapOp{Name: "produce", Params: []string{"i", "r"},
				Ranges: []Range{Span(Sym("N")), Span(Sym("R"))},
				Body: []Op{&Tasklet{Name: "t1",
					Inputs: []Access{At("A", Sym("i"))},
					Output: At("T", Sym("i"), Sym("r")),
					Fn:     func(in []complex128) complex128 { return 2 * in[0] }}}},
			&MapOp{Name: "consume", Params: []string{"i", "r"},
				Ranges: []Range{Span(Sym("N")), Span(Sym("R"))},
				Body: []Op{&Tasklet{Name: "t2",
					Inputs: []Access{At("T", Sym("i"), Sym("r"))},
					Output: At("Out", Sym("i"), Sym("r")),
					Fn:     func(in []complex128) complex128 { return in[0] + 1 }}}},
		}
		return p
	}
	run := func(p *Program, a []complex128) []complex128 {
		rt, err := p.Bind(Env{"N": 4, "R": 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.SetComplex("A", a); err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Complex("Out")
	}
	rng := rand.New(rand.NewSource(5))
	a := randomComplex(rng, 4)
	want := run(build(), a)

	p := build()
	changed, err := RedundancyRemoval(p, p.FindMap("produce"), "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "T" {
		t.Fatalf("changed arrays %v, want [T]", changed)
	}
	if len(p.Arrays["T"].Shape) != 1 {
		t.Fatalf("T should have lost a dimension, shape %v", p.Arrays["T"].Shape)
	}
	if got := p.FindMap("produce").Params; len(got) != 1 || got[0] != "i" {
		t.Fatalf("produce params %v, want [i]", got)
	}
	got := run(p, a)
	complexSliceEqual(t, got, want, 0, "redundancy-removed")

	// Fewer producer executions: N instead of N·R.
	rt, _ := p.Bind(Env{"N": 4, "R": 3})
	if err := rt.SetComplex("A", a); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Reads["A"] != 4 {
		t.Fatalf("A reads = %d after removal, want 4", rt.Reads["A"])
	}
}

func TestRedundancyRemovalRejectsDependentInput(t *testing.T) {
	p := BuildMatMul()
	// In matmul, k feeds the inputs — removing it must be rejected.
	if _, err := RedundancyRemoval(p, p.FindMap("gemm"), "k"); err == nil {
		t.Fatal("k is not redundant in matmul")
	}
}

// --- data layout -------------------------------------------------------------

func TestPermuteArrayPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const m, n, k = 4, 3, 5
	a := randomComplex(rng, m*k)
	b := randomComplex(rng, k*n)
	want := runMatMul(t, BuildMatMul(), m, n, k, a, b)

	p := BuildMatMul()
	// Store A transposed; accesses are rewritten, so the caller must supply
	// the data in the new layout.
	if err := PermuteArray(p, "A", []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	at := make([]complex128, len(a)) // a in K×M order
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			at[j*m+i] = a[i*k+j]
		}
	}
	got := runMatMul(t, p, m, n, k, at, b)
	complexSliceEqual(t, got, want, 1e-12, "permuted-layout matmul")

	if err := PermuteArray(p, "A", []int{0, 0}); err == nil {
		t.Fatal("invalid permutation must fail")
	}
	if err := PermuteArray(p, "zz", []int{0}); err == nil {
		t.Fatal("unknown array must fail")
	}
}
