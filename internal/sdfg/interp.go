package sdfg

import (
	"fmt"
)

// Runtime executes a Program and records per-array element access counts
// (the empirical counterpart of memlet propagation: tests compare the
// interpreter's measured movement against the symbolic prediction).
type Runtime struct {
	prog    *Program
	env     Env
	cplx    map[string][]complex128
	ints    map[string][]int64
	shapes  map[string][]int64
	strides map[string][]int64

	// Reads and Writes count element accesses per array.
	Reads, Writes map[string]int64
}

// Bind prepares a runtime with the given symbol values. Array storage is
// allocated lazily: inputs are supplied with SetComplex/SetInt, transients
// and untouched arrays are zero-initialized.
func (p *Program) Bind(symbols Env) (*Runtime, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{prog: p, env: Env{}, cplx: map[string][]complex128{},
		ints: map[string][]int64{}, shapes: map[string][]int64{}, strides: map[string][]int64{},
		Reads: map[string]int64{}, Writes: map[string]int64{}}
	for k, v := range symbols {
		rt.env[k] = v
	}
	for name, arr := range p.Arrays {
		shape := make([]int64, len(arr.Shape))
		n := int64(1)
		for i, e := range arr.Shape {
			shape[i] = e.Eval(rt.env)
			if shape[i] < 0 {
				return nil, fmt.Errorf("sdfg: array %q has negative dimension %d", name, shape[i])
			}
			n *= shape[i]
		}
		st := make([]int64, len(shape))
		acc := int64(1)
		for i := len(shape) - 1; i >= 0; i-- {
			st[i] = acc
			acc *= shape[i]
		}
		rt.shapes[name] = shape
		rt.strides[name] = st
		if arr.Type == Complex {
			rt.cplx[name] = make([]complex128, n)
		} else {
			rt.ints[name] = make([]int64, n)
		}
	}
	return rt, nil
}

// SetComplex copies data into a complex array (lengths must match).
func (rt *Runtime) SetComplex(name string, data []complex128) error {
	dst, ok := rt.cplx[name]
	if !ok {
		return fmt.Errorf("sdfg: no complex array %q", name)
	}
	if len(dst) != len(data) {
		return fmt.Errorf("sdfg: array %q holds %d elements, got %d", name, len(dst), len(data))
	}
	copy(dst, data)
	return nil
}

// SetInt copies data into an integer array.
func (rt *Runtime) SetInt(name string, data []int64) error {
	dst, ok := rt.ints[name]
	if !ok {
		return fmt.Errorf("sdfg: no int array %q", name)
	}
	if len(dst) != len(data) {
		return fmt.Errorf("sdfg: array %q holds %d elements, got %d", name, len(dst), len(data))
	}
	copy(dst, data)
	return nil
}

// Complex returns the current contents of a complex array.
func (rt *Runtime) Complex(name string) []complex128 { return rt.cplx[name] }

// Run executes all states in order.
func (rt *Runtime) Run() error {
	for _, s := range rt.prog.States {
		if err := rt.runOps(s.Ops); err != nil {
			return fmt.Errorf("state %q: %w", s.Name, err)
		}
	}
	return nil
}

func (rt *Runtime) runOps(ops []Op) error {
	for _, op := range ops {
		switch v := op.(type) {
		case *MapOp:
			if err := rt.runMap(v); err != nil {
				return err
			}
		case *Tasklet:
			if err := rt.runTasklet(v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sdfg: unknown op %T", op)
		}
	}
	return nil
}

func (rt *Runtime) runMap(m *MapOp) error {
	lows := make([]int64, len(m.Params))
	highs := make([]int64, len(m.Params))
	// Ranges may reference outer map params, so they are evaluated when the
	// scope is entered.
	for i, r := range m.Ranges {
		lows[i] = r.Lo.Eval(rt.env)
		highs[i] = r.Hi.Eval(rt.env)
	}
	idx := make([]int64, len(m.Params))
	copy(idx, lows)
	// Save and restore shadowed bindings so sibling scopes can reuse names.
	saved := make([]int64, len(m.Params))
	had := make([]bool, len(m.Params))
	for i, p := range m.Params {
		saved[i], had[i] = rt.env[p]
	}
	defer func() {
		for i, p := range m.Params {
			if had[i] {
				rt.env[p] = saved[i]
			} else {
				delete(rt.env, p)
			}
		}
	}()
	for i := range idx {
		if idx[i] >= highs[i] {
			return nil // empty domain
		}
	}
	for {
		for i, p := range m.Params {
			rt.env[p] = idx[i]
		}
		if err := rt.runOps(m.Body); err != nil {
			return err
		}
		// Odometer increment over the domain.
		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < highs[d] {
				break
			}
			idx[d] = lows[d]
		}
		if d < 0 {
			return nil
		}
	}
}

func (rt *Runtime) offset(a Access) (int64, error) {
	st := rt.strides[a.Array]
	sh := rt.shapes[a.Array]
	var off int64
	for d, ix := range a.Index {
		v, err := rt.evalIndex(ix)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= sh[d] {
			return 0, fmt.Errorf("sdfg: array %q index %d out of range [0,%d) on axis %d", a.Array, v, sh[d], d)
		}
		off += v * st[d]
	}
	return off, nil
}

func (rt *Runtime) evalIndex(ix IndexExpr) (int64, error) {
	switch v := ix.(type) {
	case ExprIndex:
		return v.E.Eval(rt.env), nil
	case IndirectIndex:
		off, err := rt.offset(Access{Array: v.Table, Index: v.At})
		if err != nil {
			return 0, err
		}
		rt.Reads[v.Table]++
		return rt.ints[v.Table][off], nil
	}
	return 0, fmt.Errorf("sdfg: unknown index expression %T", ix)
}

func (rt *Runtime) runTasklet(t *Tasklet) error {
	args := make([]complex128, len(t.Inputs))
	for i, in := range t.Inputs {
		off, err := rt.offset(in)
		if err != nil {
			return fmt.Errorf("tasklet %q input %d: %w", t.Name, i, err)
		}
		arr := rt.prog.Arrays[in.Array]
		if arr.Type == Complex {
			args[i] = rt.cplx[in.Array][off]
		} else {
			args[i] = complex(float64(rt.ints[in.Array][off]), 0)
		}
		rt.Reads[in.Array]++
	}
	out := t.Fn(args)
	off, err := rt.offset(t.Output)
	if err != nil {
		return fmt.Errorf("tasklet %q output: %w", t.Name, err)
	}
	if t.WCR {
		rt.cplx[t.Output.Array][off] += out
	} else {
		rt.cplx[t.Output.Array][off] = out
	}
	rt.Writes[t.Output.Array]++
	return nil
}
