package sdfg

import "fmt"

// ElemType is the element type of an array container.
type ElemType int

const (
	// Complex arrays hold complex128 data (Green's functions, operators).
	Complex ElemType = iota
	// Int arrays hold int64 data (index tables such as the neighbor map,
	// used by indirection memlets like f(a, b)).
	Int
)

// Array describes a data container (the round Data nodes of Fig. 3).
type Array struct {
	Name      string
	Shape     []Expr
	Type      ElemType
	Transient bool // local/intermediate storage introduced by transformations
}

// Program is a full SDFG: symbol declarations, array descriptors and an
// ordered list of states (control flow is sequential here; the paper's
// convergence loop is driven by the caller).
type Program struct {
	Name   string
	Arrays map[string]*Array
	States []*State
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Arrays: map[string]*Array{}}
}

// AddArray declares an array container.
func (p *Program) AddArray(name string, typ ElemType, transient bool, shape ...Expr) *Array {
	if _, dup := p.Arrays[name]; dup {
		panic(fmt.Sprintf("sdfg: duplicate array %q", name))
	}
	a := &Array{Name: name, Shape: shape, Type: typ, Transient: transient}
	p.Arrays[name] = a
	return a
}

// AddState appends an empty state and returns it.
func (p *Program) AddState(name string) *State {
	s := &State{Name: name}
	p.States = append(p.States, s)
	return s
}

// State is one control-flow node containing a dataflow graph, represented
// hierarchically: top-level operations execute in order, map scopes nest.
type State struct {
	Name string
	Ops  []Op
}

// Op is a dataflow operation: a MapOp scope or a Tasklet.
type Op interface{ opName() string }

// MapOp is a parametric parallelism scope (the trapezoid nodes of Fig. 3):
// the body executes for every point of the iteration domain given by
// Params/Ranges. Execution order within the domain is unspecified; the
// interpreter runs it sequentially.
type MapOp struct {
	Name   string
	Params []string
	Ranges []Range
	Body   []Op
}

func (m *MapOp) opName() string { return m.Name }

// Tasklet is a fine-grained computation consuming scalar inputs and
// producing one scalar output (possibly with sum conflict resolution).
type Tasklet struct {
	Name   string
	Inputs []Access
	Output Access
	// WCR marks the output memlet as conflict-resolved by summation
	// ("CR: Sum" in the figures): the computed value accumulates.
	WCR bool
	// Fn computes the output from the inputs, in declaration order.
	Fn func(in []complex128) complex128
}

func (t *Tasklet) opName() string { return t.Name }

// Access is a memlet endpoint: an array plus one index expression per
// dimension.
type Access struct {
	Array string
	Index []IndexExpr
}

// At builds an Access from plain symbolic expressions.
func At(array string, idx ...Expr) Access {
	ix := make([]IndexExpr, len(idx))
	for i, e := range idx {
		ix[i] = ExprIndex{e}
	}
	return Access{Array: array, Index: ix}
}

// IndexExpr is one dimension of a memlet subscript. Most are plain symbolic
// expressions; indirections (the f(a, b) neighbor lookup of Eq. 3) read an
// integer table at runtime and are opaque to symbolic propagation.
type IndexExpr interface {
	indexExpr()
}

// ExprIndex is a symbolic subscript dimension.
type ExprIndex struct{ E Expr }

func (ExprIndex) indexExpr() {}

// IndirectIndex subscripts through an integer table: Table[At...], the
// data-dependent access DaCe "cannot propagate" (§4.1) without a model.
type IndirectIndex struct {
	Table string
	At    []IndexExpr
}

func (IndirectIndex) indexExpr() {}

// Validate checks structural consistency: arrays exist, subscript arity
// matches array rank, map params match range counts.
func (p *Program) Validate() error {
	var checkAccess func(a Access) error
	checkAccess = func(a Access) error {
		arr, ok := p.Arrays[a.Array]
		if !ok {
			return fmt.Errorf("sdfg: access to undeclared array %q", a.Array)
		}
		if len(a.Index) != len(arr.Shape) {
			return fmt.Errorf("sdfg: array %q rank %d accessed with %d subscripts", a.Array, len(arr.Shape), len(a.Index))
		}
		for _, ix := range a.Index {
			if ind, ok := ix.(IndirectIndex); ok {
				tab, ok := p.Arrays[ind.Table]
				if !ok {
					return fmt.Errorf("sdfg: indirection through undeclared table %q", ind.Table)
				}
				if tab.Type != Int {
					return fmt.Errorf("sdfg: indirection table %q must be Int", ind.Table)
				}
				if len(ind.At) != len(tab.Shape) {
					return fmt.Errorf("sdfg: indirection table %q rank mismatch", ind.Table)
				}
			}
		}
		return nil
	}
	var checkOps func(ops []Op) error
	checkOps = func(ops []Op) error {
		for _, op := range ops {
			switch v := op.(type) {
			case *MapOp:
				if len(v.Params) != len(v.Ranges) {
					return fmt.Errorf("sdfg: map %q has %d params but %d ranges", v.Name, len(v.Params), len(v.Ranges))
				}
				if err := checkOps(v.Body); err != nil {
					return err
				}
			case *Tasklet:
				for _, in := range v.Inputs {
					if err := checkAccess(in); err != nil {
						return err
					}
				}
				if err := checkAccess(v.Output); err != nil {
					return err
				}
			default:
				return fmt.Errorf("sdfg: unknown op type %T", op)
			}
		}
		return nil
	}
	for _, s := range p.States {
		if err := checkOps(s.Ops); err != nil {
			return fmt.Errorf("state %q: %w", s.Name, err)
		}
	}
	return nil
}

// CountNodes returns the total number of operations (maps and tasklets) in
// the program — the "SDFG with 2,015 nodes" metric quoted in the paper's
// conclusion.
func (p *Program) CountNodes() int {
	var walk func(ops []Op) int
	walk = func(ops []Op) int {
		n := 0
		for _, op := range ops {
			n++
			if m, ok := op.(*MapOp); ok {
				n += walk(m.Body)
			}
		}
		return n
	}
	total := 0
	for _, s := range p.States {
		total += walk(s.Ops)
	}
	return total
}

// FindMap returns the first map with the given name, searching nested
// scopes, or nil.
func (p *Program) FindMap(name string) *MapOp {
	var walk func(ops []Op) *MapOp
	walk = func(ops []Op) *MapOp {
		for _, op := range ops {
			if m, ok := op.(*MapOp); ok {
				if m.Name == name {
					return m
				}
				if found := walk(m.Body); found != nil {
					return found
				}
			}
		}
		return nil
	}
	for _, s := range p.States {
		if m := walk(s.Ops); m != nil {
			return m
		}
	}
	return nil
}
