package sdfg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// The full §4.2 story on the SSE Σ^≷ SDFG: build the Fig. 9 state, execute
// it, apply the transformation sequence (offset absorption for qz and ω —
// Fig. 10b — and the atom-major data-layout change — Fig. 10c), and verify
// the transformed program computes the identical self-energy while
// executing the ∇H·G stage far fewer times.

type sseDims struct {
	nkz, nqz, ne, nw, n3d, na, nb, no int64
}

func tinySSE() sseDims { return sseDims{nkz: 4, nqz: 2, ne: 8, nw: 3, n3d: 2, na: 4, nb: 2, no: 2} }

func (d sseDims) env() Env {
	return Env{"Nkz": d.nkz, "Nqz": d.nqz, "NE": d.ne, "Nw": d.nw,
		"N3D": d.n3d, "NA": d.na, "NB": d.nb, "no": d.no}
}

// neighTable builds a valid f(a, b) indirection.
func (d sseDims) neighTable() []int64 {
	t := make([]int64, d.na*d.nb)
	for a := int64(0); a < d.na; a++ {
		for b := int64(0); b < d.nb; b++ {
			t[a*d.nb+b] = (a + b + 1) % d.na
		}
	}
	return t
}

// sigmaGold computes the demonstration-domain Σ with plain Go loops.
func sigmaGold(d sseDims, g, dh, dpre []complex128, neigh []int64) []complex128 {
	at5 := func(data []complex128, s1, s2, s3, s4 int64, i0, i1, i2, i3, i4 int64) complex128 {
		return data[(((i0*s1+i1)*s2+i2)*s3+i3)*s4+i4]
	}
	sigma := make([]complex128, d.nkz*d.ne*d.na*d.no*d.no)
	for k := d.nqz; k < d.nkz; k++ {
		for e := d.nw; e < d.ne; e++ {
			for q := int64(0); q < d.nqz; q++ {
				for w := int64(0); w < d.nw; w++ {
					for i := int64(0); i < d.n3d; i++ {
						for j := int64(0); j < d.n3d; j++ {
							for a := int64(0); a < d.na; a++ {
								for b := int64(0); b < d.nb; b++ {
									f := neigh[a*d.nb+b]
									dp := dpre[(((q*d.nw+w)*d.na+a)*d.nb+b)*d.n3d*d.n3d+i*d.n3d+j]
									for m := int64(0); m < d.no; m++ {
										for n := int64(0); n < d.no; n++ {
											var acc complex128
											for p := int64(0); p < d.no; p++ {
												var dhg complex128
												for l := int64(0); l < d.no; l++ {
													gv := at5(g, d.ne, d.na, d.no, d.no, k-q, e-w, f, m, l)
													dhv := at5(dh, d.nb, d.n3d, d.no, d.no, a, b, i, l, p)
													dhg += gv * dhv
												}
												dhd := at5(dh, d.nb, d.n3d, d.no, d.no, a, b, j, p, n) * dp
												acc += dhg * dhd
											}
											sigma[(((k*d.ne+e)*d.na+a)*d.no+m)*d.no+n] += acc
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return sigma
}

func runSSE(t *testing.T, p *Program, d sseDims, g, dh, dpre []complex128, neigh []int64) (*Runtime, []complex128) {
	t.Helper()
	rt, err := p.Bind(d.env())
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]complex128{"G": g, "dH": dh, "Dpre": dpre} {
		if err := rt.SetComplex(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetInt("neigh", neigh); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt, rt.Complex("Sigma")
}

func TestSSESigmaSDFGMatchesGold(t *testing.T) {
	d := tinySSE()
	rng := rand.New(rand.NewSource(7))
	g := randomComplex(rng, int(d.nkz*d.ne*d.na*d.no*d.no))
	dh := randomComplex(rng, int(d.na*d.nb*d.n3d*d.no*d.no))
	dpre := randomComplex(rng, int(d.nqz*d.nw*d.na*d.nb*d.n3d*d.n3d))
	neigh := d.neighTable()
	_, got := runSSE(t, BuildSSESigma(), d, g, dh, dpre, neigh)
	want := sigmaGold(d, g, dh, dpre, neigh)
	complexSliceEqual(t, got, want, 1e-11, "SSE SDFG vs gold")
}

func TestSSETransformationPipeline(t *testing.T) {
	d := tinySSE()
	rng := rand.New(rand.NewSource(8))
	g := randomComplex(rng, int(d.nkz*d.ne*d.na*d.no*d.no))
	dh := randomComplex(rng, int(d.na*d.nb*d.n3d*d.no*d.no))
	dpre := randomComplex(rng, int(d.nqz*d.nw*d.na*d.nb*d.n3d*d.n3d))
	neigh := d.neighTable()

	base := BuildSSESigma()
	rtBase, want := runSSE(t, base, d, g, dh, dpre, neigh)

	p := BuildSSESigma()
	dhgMap := p.FindMap("dHG")
	// Fig. 10(b): absorb the qz offset, then the ω offset.
	if err := AbsorbOffset(p, dhgMap, "k", "q", "dHG"); err != nil {
		t.Fatal(err)
	}
	if err := AbsorbOffset(p, dhgMap, "E", "w", "dHG"); err != nil {
		t.Fatal(err)
	}
	// The ∇H·G map lost its (q, w) parameters and dHG its two dimensions.
	if len(dhgMap.Params) != 8 {
		t.Fatalf("dHG map params after absorption: %v", dhgMap.Params)
	}
	if got := len(p.Arrays["dHG"].Shape); got != 7 {
		t.Fatalf("dHG rank after absorption = %d, want 7", got)
	}
	// Fig. 10(c): atom-major data layout for dHG
	// (k', E', i, a, b, m, p) → (a, b, i, k', E', m, p).
	if err := PermuteArray(p, "dHG", []int{3, 4, 2, 0, 1, 5, 6}); err != nil {
		t.Fatal(err)
	}

	rt, got := runSSE(t, p, d, g, dh, dpre, neigh)
	complexSliceEqual(t, got, want, 1e-11, "transformed SSE")

	// The redundancy is gone: the transformed program reads G far fewer
	// times (once per shifted grid point instead of once per (q, w) pair).
	if rt.Reads["G"] >= rtBase.Reads["G"] {
		t.Fatalf("transformed program should read G less: %d vs %d", rt.Reads["G"], rtBase.Reads["G"])
	}
	ratio := float64(rtBase.Reads["G"]) / float64(rt.Reads["G"])
	if ratio < 1.5 {
		t.Fatalf("expected a substantial reduction in G reads, got %.2f×", ratio)
	}
}

func TestAbsorbOffsetErrors(t *testing.T) {
	p := BuildSSESigma()
	m := p.FindMap("dHG")
	if err := AbsorbOffset(p, m, "zz", "q", "dHG"); err == nil {
		t.Fatal("unknown param must fail")
	}
	if err := AbsorbOffset(p, m, "k", "q", "Sigma"); err == nil {
		t.Fatal("wrong output array must fail")
	}
}

func TestSSEPropagationThroughTiles(t *testing.T) {
	// End-to-end §4.1 check on the real SSE map: tile kz and qz, propagate
	// the G subscript, and compare the symbolic prediction against the
	// interpreter's measured unique reads of G along the kz axis.
	d := tinySSE()
	p := BuildSSESigma()
	m := p.FindMap("dHG")
	kRange, qRange := m.Ranges[0], m.Ranges[2]
	scope := map[string]Range{"k": kRange, "q": qRange}
	prop, err := PropagateExpr(Sub(Sym("k"), Sym("q")), scope)
	if err != nil {
		t.Fatal(err)
	}
	env := d.env()
	// Demonstration domain: k ∈ [Nqz, Nkz), q ∈ [0, Nqz) →
	// k−q ∈ [1, Nkz), i.e. Nkz−1 unique values.
	if got := prop.Bounds.Lo.Eval(env); got != 1 {
		t.Fatalf("propagated lo = %d, want 1", got)
	}
	if got := prop.Bounds.Hi.Eval(env); got != d.nkz {
		t.Fatalf("propagated hi = %d, want %d", got, d.nkz)
	}
	if got := prop.UniqueLength(Sym("Nkz")).Eval(env); got != d.nkz-1 {
		t.Fatalf("unique kz accesses = %d, want %d", got, d.nkz-1)
	}
	_ = cmplx.Abs
}
