package sdfg

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
)

func runMatMul(t *testing.T, p *Program, m, n, k int64, a, b []complex128) []complex128 {
	t.Helper()
	rt, err := p.Bind(Env{"M": m, "N": n, "K": k})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetComplex("A", a); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetComplex("B", b); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt.Complex("C")
}

func TestMatMulSDFGMatchesCmat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 4, 5, 3
	a := cmat.RandomDense(rng, m, k)
	b := cmat.RandomDense(rng, k, n)
	got := runMatMul(t, BuildMatMul(), m, n, k, a.Data, b.Data)
	want := a.Mul(b)
	for i := range got {
		if cmplx.Abs(got[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("element %d: %v vs %v", i, got[i], want.Data[i])
		}
	}
}

func TestMatMulAccessCounts(t *testing.T) {
	// Fig. 4 annotates the memlets A(MKN), B(MKN), C(MKN): every array is
	// accessed M·N·K times by the naive map.
	p := BuildMatMul()
	rt, err := p.Bind(Env{"M": 3, "N": 4, "K": 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := int64(3 * 4 * 5)
	if rt.Reads["A"] != want || rt.Reads["B"] != want || rt.Writes["C"] != want {
		t.Fatalf("accesses A=%d B=%d C=%d, want all %d", rt.Reads["A"], rt.Reads["B"], rt.Writes["C"], want)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := NewProgram("bad")
	p.AddArray("A", Complex, false, Lit(4))
	s := p.AddState("s")
	s.Ops = []Op{&Tasklet{Name: "t", Inputs: []Access{At("missing", Lit(0))}, Output: At("A", Lit(0)),
		Fn: func(in []complex128) complex128 { return in[0] }}}
	if err := p.Validate(); err == nil {
		t.Fatal("undeclared array must fail validation")
	}
	s.Ops = []Op{&Tasklet{Name: "t", Inputs: []Access{At("A", Lit(0), Lit(1))}, Output: At("A", Lit(0)),
		Fn: func(in []complex128) complex128 { return in[0] }}}
	if err := p.Validate(); err == nil {
		t.Fatal("rank mismatch must fail validation")
	}
	s.Ops = []Op{&MapOp{Name: "m", Params: []string{"i", "j"}, Ranges: []Range{Span(Lit(2))}}}
	if err := p.Validate(); err == nil {
		t.Fatal("param/range mismatch must fail validation")
	}
}

func TestOutOfRangeIndexError(t *testing.T) {
	p := NewProgram("oob")
	p.AddArray("A", Complex, false, Lit(2))
	p.AddArray("B", Complex, false, Lit(2))
	s := p.AddState("s")
	s.Ops = []Op{&Tasklet{Name: "t", Inputs: []Access{At("A", Lit(5))}, Output: At("B", Lit(0)),
		Fn: func(in []complex128) complex128 { return in[0] }}}
	rt, err := p.Bind(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err == nil {
		t.Fatal("out-of-range subscript must error at runtime")
	}
}

func TestEmptyMapDomain(t *testing.T) {
	p := NewProgram("empty")
	p.AddArray("A", Complex, false, Lit(2))
	s := p.AddState("s")
	s.Ops = []Op{&MapOp{Name: "m", Params: []string{"i"}, Ranges: []Range{NewRange(Lit(3), Lit(3))},
		Body: []Op{&Tasklet{Name: "t", Inputs: []Access{At("A", Lit(0))}, Output: At("A", Lit(1)),
			Fn: func(in []complex128) complex128 { return in[0] }}}}}
	rt, err := p.Bind(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Reads["A"] != 0 {
		t.Fatal("empty domain must not execute the body")
	}
}

func TestIndirection(t *testing.T) {
	// out[i] = src[tab[i]]: a gather through an integer table.
	p := NewProgram("gather")
	p.AddArray("src", Complex, false, Lit(4))
	p.AddArray("tab", Int, false, Lit(4))
	p.AddArray("out", Complex, false, Lit(4))
	s := p.AddState("s")
	s.Ops = []Op{&MapOp{Name: "m", Params: []string{"i"}, Ranges: []Range{Span(Lit(4))},
		Body: []Op{&Tasklet{Name: "g",
			Inputs: []Access{{Array: "src", Index: []IndexExpr{IndirectIndex{Table: "tab", At: []IndexExpr{ExprIndex{Sym("i")}}}}}},
			Output: At("out", Sym("i")),
			Fn:     func(in []complex128) complex128 { return in[0] }}}}}
	rt, err := p.Bind(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetComplex("src", []complex128{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetInt("tab", []int64{3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := []complex128{40, 30, 20, 10}
	for i, v := range rt.Complex("out") {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
	if rt.Reads["tab"] != 4 {
		t.Fatalf("table reads = %d, want 4", rt.Reads["tab"])
	}
}

func TestCountNodes(t *testing.T) {
	if got := BuildMatMul().CountNodes(); got != 2 { // one map + one tasklet
		t.Fatalf("matmul nodes = %d, want 2", got)
	}
	if got := BuildSSESigma().CountNodes(); got != 6 { // three maps + three tasklets
		t.Fatalf("sse nodes = %d, want 6", got)
	}
}

func TestFindMap(t *testing.T) {
	p := BuildSSESigma()
	if p.FindMap("dHG") == nil || p.FindMap("sigma") == nil {
		t.Fatal("FindMap failed on top-level maps")
	}
	if p.FindMap("nope") != nil {
		t.Fatal("FindMap invented a map")
	}
}
