package sdfg

import (
	"fmt"
	"slices"
)

// Graph transformations (§4.2). Each transformation mutates the program in
// place and preserves the computed values; tests execute programs before and
// after each transformation and compare outputs.

// TileMap applies the Map Tiling transformation of §4.1 to parameter param
// of map m: the map is split into an outer map over tiles (parameter
// "t"+param) and m itself iterating within the tile,
//
//	param ∈ [t·s, min(hi, (t+1)·s)).
//
// The returned outer map replaces m in its parent; callers pass the slice
// holding m (state Ops or parent body).
func TileMap(parent *[]Op, m *MapOp, param string, tile int64) (*MapOp, error) {
	pi := slices.Index(m.Params, param)
	if pi < 0 {
		return nil, fmt.Errorf("sdfg: map %q has no parameter %q", m.Name, param)
	}
	pos := slices.IndexFunc(*parent, func(op Op) bool { return op == Op(m) })
	if pos < 0 {
		return nil, fmt.Errorf("sdfg: map %q not found in parent scope", m.Name)
	}
	r := m.Ranges[pi]
	tp := "t" + param
	outer := &MapOp{
		Name:   m.Name + "_tiled_" + param,
		Params: []string{tp},
		// ceil((hi − lo)/tile) tiles.
		Ranges: []Range{{Lit(0), Div(Add(r.Length(), Lit(tile-1)), Lit(tile))}},
		Body:   []Op{m},
	}
	base := Add(r.Lo, Mul(Sym(tp), Lit(tile)))
	m.Ranges[pi] = Range{base, MinE(r.Hi, Add(base, Lit(tile)))}
	(*parent)[pos] = outer
	return outer, nil
}

// ExpandMap applies Map Expansion (Fig. 11b): the first k parameters stay in
// m, the rest move to a new nested inner map.
func ExpandMap(m *MapOp, k int) (*MapOp, error) {
	if k <= 0 || k >= len(m.Params) {
		return nil, fmt.Errorf("sdfg: cannot expand map %q at position %d of %d", m.Name, k, len(m.Params))
	}
	inner := &MapOp{
		Name:   m.Name + "_inner",
		Params: append([]string(nil), m.Params[k:]...),
		Ranges: append([]Range(nil), m.Ranges[k:]...),
		Body:   m.Body,
	}
	m.Params = m.Params[:k]
	m.Ranges = m.Ranges[:k]
	m.Body = []Op{inner}
	return inner, nil
}

// accessUsesParam reports whether access a references map parameter p.
func accessUsesParam(a Access, p string) bool {
	var usesIx func(ix IndexExpr) bool
	usesIx = func(ix IndexExpr) bool {
		switch v := ix.(type) {
		case ExprIndex:
			return ContainsSym(v.E, p)
		case IndirectIndex:
			for _, sub := range v.At {
				if usesIx(sub) {
					return true
				}
			}
		}
		return false
	}
	for _, ix := range a.Index {
		if usesIx(ix) {
			return true
		}
	}
	return false
}

func taskletUsesParam(t *Tasklet, p string) bool {
	for _, in := range t.Inputs {
		if accessUsesParam(in, p) {
			return true
		}
	}
	return accessUsesParam(t.Output, p)
}

// FissionMap applies the Map Fission transformation (Fig. 9): a map whose
// body is a sequence of tasklets is split into one map per tasklet, each
// retaining only the parameters that tasklet references. The tasklets must
// already exchange intermediate values through (transient) arrays indexed by
// map parameters — the builder in this package constructs bodies that way,
// mirroring how DaCe introduces multi-dimensional transients when it
// distributes a map.
func FissionMap(parent *[]Op, m *MapOp) ([]*MapOp, error) {
	pos := slices.IndexFunc(*parent, func(op Op) bool { return op == Op(m) })
	if pos < 0 {
		return nil, fmt.Errorf("sdfg: map %q not found in parent scope", m.Name)
	}
	var tasklets []*Tasklet
	for _, op := range m.Body {
		t, ok := op.(*Tasklet)
		if !ok {
			return nil, fmt.Errorf("sdfg: FissionMap needs a flat tasklet body, found %T", op)
		}
		tasklets = append(tasklets, t)
	}
	var out []*MapOp
	for i, t := range tasklets {
		var params []string
		var ranges []Range
		for d, p := range m.Params {
			if taskletUsesParam(t, p) {
				params = append(params, p)
				ranges = append(ranges, m.Ranges[d])
			}
		}
		out = append(out, &MapOp{
			Name:   fmt.Sprintf("%s_fission_%d", m.Name, i),
			Params: params,
			Ranges: ranges,
			Body:   []Op{t},
		})
	}
	news := make([]Op, len(out))
	for i, mo := range out {
		news[i] = mo
	}
	*parent = slices.Replace(*parent, pos, pos+1, news...)
	return out, nil
}

// FuseMaps applies the Map Fusion transformation (Fig. 12): two adjacent
// maps with identical parameter lists and ranges are merged into one. The
// caller is responsible for the legality condition (the second map only
// consumes per-iteration values the first produced at the same index).
func FuseMaps(parent *[]Op, a, b *MapOp) (*MapOp, error) {
	pa := slices.IndexFunc(*parent, func(op Op) bool { return op == Op(a) })
	pb := slices.IndexFunc(*parent, func(op Op) bool { return op == Op(b) })
	if pa < 0 || pb < 0 || pb != pa+1 {
		return nil, fmt.Errorf("sdfg: FuseMaps requires adjacent maps")
	}
	if !slices.Equal(a.Params, b.Params) {
		return nil, fmt.Errorf("sdfg: FuseMaps parameter mismatch %v vs %v", a.Params, b.Params)
	}
	for i := range a.Ranges {
		if a.Ranges[i].String() != b.Ranges[i].String() {
			return nil, fmt.Errorf("sdfg: FuseMaps range mismatch on %q", a.Params[i])
		}
	}
	fused := &MapOp{Name: a.Name + "+" + b.Name, Params: a.Params, Ranges: a.Ranges,
		Body: append(append([]Op{}, a.Body...), b.Body...)}
	*parent = slices.Replace(*parent, pa, pb+1, Op(fused))
	return fused, nil
}

// RedundancyRemoval applies the Fig. 10(b) transformation: if map parameter
// p of map m appears ONLY in the output subscripts of its tasklets (never in
// an input), every iteration along p computes identical values, so p is
// removed from the map. Array dimensions of transient outputs indexed
// exactly by p are dropped, and all reads of those arrays anywhere in the
// program drop the corresponding subscript. Returns the arrays whose layout
// changed.
func RedundancyRemoval(prog *Program, m *MapOp, p string) ([]string, error) {
	pi := slices.Index(m.Params, p)
	if pi < 0 {
		return nil, fmt.Errorf("sdfg: map %q has no parameter %q", m.Name, p)
	}
	type drop struct {
		array string
		dim   int
	}
	var drops []drop
	for _, op := range m.Body {
		t, ok := op.(*Tasklet)
		if !ok {
			return nil, fmt.Errorf("sdfg: RedundancyRemoval needs a flat tasklet body")
		}
		for _, in := range t.Inputs {
			if accessUsesParam(in, p) {
				return nil, fmt.Errorf("sdfg: parameter %q is not redundant: input %q depends on it", p, in.Array)
			}
		}
		if t.WCR {
			return nil, fmt.Errorf("sdfg: parameter %q feeds a sum-resolved output; removal would change the result", p)
		}
		found := false
		for d, ix := range t.Output.Index {
			e, ok := ix.(ExprIndex)
			if !ok {
				continue
			}
			if se, isSym := e.E.(symExpr); isSym && string(se) == p {
				drops = append(drops, drop{t.Output.Array, d})
				found = true
			} else if ContainsSym(e.E, p) {
				return nil, fmt.Errorf("sdfg: output subscript %s uses %q non-trivially", e.E, p)
			}
		}
		if !found {
			return nil, fmt.Errorf("sdfg: parameter %q unused by tasklet %q; use map-parameter cleanup instead", p, t.Name)
		}
	}
	// Remove the parameter from the map.
	m.Params = slices.Delete(m.Params, pi, pi+1)
	m.Ranges = slices.Delete(m.Ranges, pi, pi+1)
	// Shrink the affected arrays and rewrite every access program-wide.
	changed := map[string]bool{}
	for _, d := range drops {
		arr := prog.Arrays[d.array]
		if arr == nil {
			return nil, fmt.Errorf("sdfg: unknown array %q", d.array)
		}
		arr.Shape = slices.Delete(arr.Shape, d.dim, d.dim+1)
		changed[d.array] = true
		rewriteAccesses(prog, d.array, d.dim)
	}
	names := make([]string, 0, len(changed))
	for n := range changed {
		names = append(names, n)
	}
	slices.Sort(names)
	return names, nil
}

// rewriteAccesses deletes subscript dim of every access to array throughout
// the program.
func rewriteAccesses(prog *Program, array string, dim int) {
	var fixAccess func(a *Access)
	fixAccess = func(a *Access) {
		if a.Array == array {
			a.Index = slices.Delete(a.Index, dim, dim+1)
		}
	}
	var walk func(ops []Op)
	walk = func(ops []Op) {
		for _, op := range ops {
			switch v := op.(type) {
			case *MapOp:
				walk(v.Body)
			case *Tasklet:
				for i := range v.Inputs {
					fixAccess(&v.Inputs[i])
				}
				fixAccess(&v.Output)
			}
		}
	}
	for _, s := range prog.States {
		walk(s.Ops)
	}
}

// PermuteArray applies the Data-Layout transformation of Fig. 10(c): array
// dimensions are reordered by perm (new dim i holds old dim perm[i]) and
// every access in the program is rewritten to match. Values are unchanged —
// only the memory order, which the interpreter's strides reflect.
func PermuteArray(prog *Program, array string, perm []int) error {
	arr, ok := prog.Arrays[array]
	if !ok {
		return fmt.Errorf("sdfg: unknown array %q", array)
	}
	if len(perm) != len(arr.Shape) {
		return fmt.Errorf("sdfg: permutation rank %d for array rank %d", len(perm), len(arr.Shape))
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("sdfg: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	newShape := make([]Expr, len(perm))
	for i, p := range perm {
		newShape[i] = arr.Shape[p]
	}
	arr.Shape = newShape
	var walk func(ops []Op)
	permuteAccess := func(a *Access) {
		if a.Array != array {
			return
		}
		ni := make([]IndexExpr, len(perm))
		for i, p := range perm {
			ni[i] = a.Index[p]
		}
		a.Index = ni
	}
	walk = func(ops []Op) {
		for _, op := range ops {
			switch v := op.(type) {
			case *MapOp:
				walk(v.Body)
			case *Tasklet:
				for i := range v.Inputs {
					permuteAccess(&v.Inputs[i])
				}
				permuteAccess(&v.Output)
			}
		}
	}
	for _, s := range prog.States {
		walk(s.Ops)
	}
	return nil
}
