// FinFET self-heating: the workload that motivates the paper (Fig. 1).
// A synthetic fin slice is driven with a source-drain bias sweep; for each
// bias point the self-consistent electron-phonon solver yields the I-V
// characteristic and the per-atom dissipated power, which is rendered as an
// atomically-resolved "temperature" map over the device cross-section —
// the analogue of the heat map in Fig. 1(d).
//
//	go run ./examples/finfet_selfheating
package main

import (
	"fmt"
	"log"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

func main() {
	log.SetFlags(0)

	p := device.Params{
		Nkz: 3, Nqz: 3, NE: 20, Nw: 4,
		NA: 40, NB: 4, Norb: 2, N3D: 3,
		Rows: 4, Bnum: 5,
		Emin: -1, Emax: 1, Seed: 42,
	}
	dev, err := device.New(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fin slice: %d atoms (%d columns × %d rows), source at column 0, drain at column %d\n\n",
		p.NA, p.Cols(), p.Rows, p.Cols()-1)

	fmt.Println("I-V sweep (self-consistent with electron-phonon scattering):")
	fmt.Printf("%-12s %-14s %-14s %-12s\n", "V_DS [V]", "I_D", "dissipated", "iterations")
	var lastRes *core.Result
	for _, vds := range []float64{0.1, 0.2, 0.3, 0.4} {
		opts := core.DefaultOptions()
		opts.MaxIter = 5
		opts.Contacts.MuL = vds / 2
		opts.Contacts.MuR = -vds / 2
		sim := core.New(dev, opts)
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		var dissip float64
		for _, d := range res.Obs.DissipationPerAtom {
			dissip += d
		}
		fmt.Printf("%-12.2f %+.6e %+.6e %-12d\n", vds, res.Obs.CurrentL, dissip, res.Iterations)
		lastRes = res
	}

	fmt.Println("\natomically-resolved dissipation map at V_DS = 0.40 V")
	fmt.Println("(column = transport direction x, row = fin width y; hotter = more energy")
	fmt.Println("exchanged with the lattice, the self-heating picture of Fig. 1(d)):")
	printHeatMap(dev, lastRes.Obs.DissipationPerAtom)
}

// printHeatMap renders the per-atom dissipation on the 2-D slice.
func printHeatMap(dev *device.Device, dissip []float64) {
	shades := []byte(" .:-=+*#%@")
	var lo, hi float64
	for i, d := range dissip {
		if i == 0 || d < lo {
			lo = d
		}
		if i == 0 || d > hi {
			hi = d
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for r := dev.P.Rows - 1; r >= 0; r-- {
		fmt.Printf("  y=%d |", r)
		for c := 0; c < dev.P.Cols(); c++ {
			a := c*dev.P.Rows + r
			level := int(float64(len(shades)-1) * (dissip[a] - lo) / span)
			fmt.Printf(" %c", shades[level])
		}
		fmt.Println(" |")
	}
	fmt.Print("       ")
	for c := 0; c < dev.P.Cols(); c++ {
		fmt.Print("--")
	}
	fmt.Println("\n        source" + pad(2*dev.P.Cols()-12) + "drain")
	fmt.Printf("  scale: ' ' = %.2e … '@' = %.2e\n", lo, hi)
}

func pad(n int) string {
	if n < 1 {
		n = 1
	}
	s := make([]byte, n)
	for i := range s {
		s[i] = ' '
	}
	return string(s)
}
