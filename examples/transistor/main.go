// Transistor: the full TCAD loop on a synthetic fin — the coupled
// NEGF–Poisson (Gummel) solver sweeps the gate voltage at fixed drain bias
// and prints the transfer characteristic I_D(V_G), plus the converged
// electrostatic potential across the device cross-section. This is the
// workload class (gate-controlled FinFETs, Fig. 1) whose electro-thermal
// analysis motivates the paper.
//
//	go run ./examples/transistor
package main

import (
	"fmt"
	"log"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

func main() {
	log.SetFlags(0)
	dev, err := device.New(device.Mini())
	if err != nil {
		log.Fatal(err)
	}
	const vd = 0.2
	fmt.Printf("fin: %d atoms (%d×%d), drain bias %.2f V\n\n", dev.P.NA, dev.P.Cols(), dev.P.Rows, vd)
	fmt.Println("transfer characteristic (coupled NEGF–Poisson):")
	fmt.Printf("%-10s %-14s %-8s %-10s\n", "V_G [V]", "I_D", "Gummel", "max φ [V]")

	var last *core.ElectrostaticResult
	for _, vg := range []float64{0.0, 0.1, 0.2, 0.3} {
		opts := core.DefaultOptions()
		opts.MaxIter = 3
		opts.Contacts.MuL = vd / 2
		opts.Contacts.MuR = -vd / 2
		sim := core.New(dev, opts)
		gate := core.DefaultGate(vg, 0)
		gate.MaxOuter = 5
		res, err := sim.RunWithPoisson(gate)
		if err != nil {
			log.Fatal(err)
		}
		var phiMax float64
		for _, v := range res.Potential {
			if v > phiMax {
				phiMax = v
			}
		}
		fmt.Printf("%-10.2f %+.6e %-8d %-10.4f\n", vg, res.Obs.CurrentL, res.OuterIterations, phiMax)
		last = res
	}

	fmt.Println("\nconverged potential at the last bias point (V, by grid position):")
	p := dev.P
	for r := p.Rows - 1; r >= 0; r-- {
		fmt.Printf("  y=%d |", r)
		for c := 0; c < p.Cols(); c++ {
			fmt.Printf(" %+0.3f", last.Potential[c*p.Rows+r])
		}
		fmt.Println(" |")
	}
	fmt.Println("        source → drain  (top row gated)")
}
