// Bandstructure: traces the electron and phonon dispersions of the
// synthetic fin along the periodic z direction — the physics encoded in
// H(kz) and Φ(qz) that the momentum grid of the simulation samples
// (Fig. 1b: the fin height is treated as periodic and represented by
// momentum points).
//
//	go run ./examples/bandstructure
package main

import (
	"fmt"
	"log"
	"math"

	"negfsim/internal/cmat"
	"negfsim/internal/device"
)

func main() {
	log.SetFlags(0)
	p := device.Mini()
	p.Nkz, p.Nqz = 8, 8 // finer momentum sampling for the dispersion plot
	dev, err := device.New(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("electron band edges E(kz) [eV] over the periodic zone:")
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "kz/π", "E_min", "E_max", "bandwidth")
	for kz := 0; kz <= p.Nkz/2; kz++ {
		lo, hi, err := cmat.SpectralBounds(dev.Hamiltonian(kz).ToDense(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-12.4f %-12.4f %-12.4f\n",
			dev.KzPhase(kz)/math.Pi, lo, hi, hi-lo)
	}

	fmt.Println("\nphonon frequency range ω(qz) = sqrt(eig Φ) [eV]:")
	fmt.Printf("%-8s %-12s %-12s\n", "qz/π", "ω_min", "ω_max")
	for qz := 0; qz <= p.Nqz/2; qz++ {
		lo, hi, err := cmat.SpectralBounds(dev.Dynamical(qz).ToDense(), 0)
		if err != nil {
			log.Fatal(err)
		}
		if lo < 0 {
			lo = 0 // numerical zero of the acoustic branch
		}
		fmt.Printf("%-8.2f %-12.4f %-12.4f\n",
			dev.QzPhase(qz)/math.Pi, math.Sqrt(lo), math.Sqrt(hi))
	}
	fmt.Println("\nacoustic phonons go soft (ω → 0) at qz = 0 — the acoustic sum rule")
	fmt.Println("of the spring model — and stiffen with momentum, while the electron")
	fmt.Println("bands disperse with kz through the periodic coupling of H(kz).")
}
