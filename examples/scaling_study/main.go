// Scaling study: uses the calibrated performance model to answer the
// practical question behind §5 of the paper — how long does one GF+SSE
// iteration of a given nanostructure take on Piz Daint versus Summit, how
// does the answer change with node count, and where is the crossover
// between compute- and communication-bound execution for the original
// versus the communication-avoiding algorithm?
//
//	go run ./examples/scaling_study
package main

import (
	"fmt"

	"negfsim/internal/device"
	"negfsim/internal/perfmodel"
)

func main() {
	p := device.Paper4864(7)
	fmt.Printf("structure: NA=%d, Nkz=%d, NE=%d, Nω=%d, Norb=%d\n\n", p.NA, p.Nkz, p.NE, p.Nw, p.Norb)

	for _, m := range []perfmodel.Machine{perfmodel.PizDaint, perfmodel.Summit} {
		fmt.Printf("=== %s (%d nodes × %d GPUs) ===\n", m.Name, m.Nodes, m.GPUsPerNode)
		nodes := []int{128, 512, 2048}
		if m.Name == "Summit" {
			nodes = []int{32, 128, 512}
		}
		for _, n := range nodes {
			dace := m.Project(p, n, perfmodel.DaCe)
			omen := m.Project(p, n, perfmodel.OMEN)
			fmt.Printf("%5d nodes: DaCe %7.1f s/iter (GF %6.1f + SSE %6.1f + comm %6.1f)\n",
				n, dace.Total(), dace.GF, dace.SSE, dace.Comm)
			fmt.Printf("%5s        OMEN %7.1f s/iter (GF %6.1f + SSE %6.1f + comm %6.1f)  → %5.1f× slower\n",
				"", omen.Total(), omen.GF, omen.SSE, omen.Comm, omen.Total()/dace.Total())
		}
		fmt.Println()
	}

	fmt.Println("=== what extreme scale buys (Table 8 projection) ===")
	for _, r := range perfmodel.Table8(perfmodel.PaperTable8Configs) {
		total := r.GFTime + r.SSETime + r.CommTime
		fmt.Printf("NA=10240, Nkz=%2d on %4d Summit nodes: %6.1f s/iteration (%.0f Pflop)\n",
			r.Nkz, r.Nodes, total, r.GFPflop+r.SSEPflop)
	}
	fmt.Println("\nthe 21-kz-point, 10,240-atom system — \"a size never-before-simulated")
	fmt.Println("with DFT+SSE at the ab initio level\" — fits in minutes per iteration,")
	fmt.Println("which is what makes self-heating studies of realistic FinFETs practical.")
}
