// Communication avoidance demo: runs the SSE data exchange both ways on the
// in-process simulated cluster — OMEN's original momentum-energy rounds and
// the paper's communication-avoiding atom×energy decomposition — measuring
// every byte, then executes the CA decomposition END-TO-END with real
// Green's function tensors and verifies the distributed self-energies
// against the serial kernel.
//
//	go run ./examples/commavoid
package main

import (
	"fmt"
	"log"

	"negfsim/internal/comm"
	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/sse"
)

func main() {
	log.SetFlags(0)

	dev, err := device.New(device.Mini())
	if err != nil {
		log.Fatal(err)
	}
	p := dev.P
	const procs = 4

	// --- pattern-level comparison (sized buffers, measured bytes) --------
	fmt.Printf("SSE exchange on a %d-rank simulated cluster (NA=%d, Nkz=%d, NE=%d):\n\n",
		procs, p.NA, p.Nkz, p.NE)

	cOmen := comm.NewCluster(procs)
	if err := cOmen.Run(func(r *comm.Rank) error { return comm.OMENExchangeSSE(r, p) }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  OMEN scheme (Nqz·Nω rounds of bcast + ring + reduce): %8d bytes\n", cOmen.TotalBytes())

	best, _ := comm.SearchTiles(p, procs, 0)
	cDace := comm.NewCluster(procs)
	if err := cDace.Run(func(r *comm.Rank) error {
		return comm.DaCeExchangeSSE(r, p, best.TE, best.TA)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  DaCe scheme (one alltoallv, TE=%d × TA=%d tiling):    %8d bytes\n",
		best.TE, best.TA, cDace.TotalBytes())
	fmt.Printf("  reduction: %.1f×\n\n", float64(cOmen.TotalBytes())/float64(cDace.TotalBytes()))

	// --- end-to-end CA execution with real data --------------------------
	fmt.Println("end-to-end communication-avoiding SSE with real tensors:")
	sim := core.New(dev, core.DefaultOptions())
	ballistic, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	in := sse.PhaseInput{
		GLess: ballistic.GLess, GGtr: ballistic.GGtr,
		DLess: ballistic.DLess, DGtr: ballistic.DGtr,
	}
	serial := sim.Kernel.ComputePhase(in, sse.DaCe)
	dist, err := sim.DistributedSSE(in, best.TE, best.TA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured traffic: %d bytes (closed-form model: %.0f bytes)\n",
		dist.MeasuredBytes, dist.ModelBytes)
	fmt.Printf("  max |Σ_serial − Σ_distributed| = %.2e\n",
		serial.SigmaLess.MaxAbsDiff(dist.SigmaLess))
	fmt.Printf("  max |Π_serial − Π_distributed| = %.2e\n",
		serial.PiLess.MaxAbsDiff(dist.PiLess))
	fmt.Println("\nthe distributed tiles reproduce the serial self-energies to rounding,")
	fmt.Println("while moving orders of magnitude less data than the original scheme —")
	fmt.Println("the paper's communication-avoiding result at laptop scale.")
}
