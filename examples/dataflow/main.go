// Dataflow walkthrough: the §4.2 story told executably. The Σ^≷ SSE
// computation is built as a stateful dataflow multigraph, executed, then
// transformed step by step — redundancy removal of the (qz, ω) offsets
// (Fig. 10b) and the atom-major data-layout change (Fig. 10c) — executing
// after every step to show that the values never change while the data
// movement collapses.
//
//	go run ./examples/dataflow
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"negfsim/internal/sdfg"
)

var env = sdfg.Env{"Nkz": 4, "Nqz": 2, "NE": 8, "Nw": 3, "N3D": 2, "NA": 4, "NB": 2, "no": 2}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(1))
	g := randomSlice(rng, 4*8*4*2*2)
	dh := randomSlice(rng, 4*2*2*2*2)
	dpre := randomSlice(rng, 2*3*4*2*2*2)
	neigh := []int64{1, 2, 2, 3, 3, 0, 0, 1} // f(a, b) for NA=4, NB=2

	fmt.Println("The SSE Σ computation as a dataflow graph (symbols:", env, ")")

	base := sdfg.BuildSSESigma()
	fmt.Printf("\nstep 0 — the Fig. 9 state (%d graph nodes):\n", base.CountNodes())
	ref := run(base, g, dh, dpre, neigh)
	report(base, "baseline")

	p := sdfg.BuildSSESigma()
	m := p.FindMap("dHG")
	if err := sdfg.AbsorbOffset(p, m, "k", "q", "dHG"); err != nil {
		log.Fatal(err)
	}
	check(p, g, dh, dpre, neigh, ref, "after absorbing the qz offset (Fig. 10b)")
	report(p, "qz absorbed")

	if err := sdfg.AbsorbOffset(p, m, "E", "w", "dHG"); err != nil {
		log.Fatal(err)
	}
	check(p, g, dh, dpre, neigh, ref, "after absorbing the ω offset")
	report(p, "qz+ω absorbed")

	if err := sdfg.PermuteArray(p, "dHG", []int{3, 4, 2, 0, 1, 5, 6}); err != nil {
		log.Fatal(err)
	}
	check(p, g, dh, dpre, neigh, ref, "after the atom-major layout change (Fig. 10c)")
	report(p, "atom-major")

	fmt.Println("\nthe transformed graph computes the identical Σ while the ∇H·G stage")
	fmt.Println("runs once per shifted grid point instead of once per (qz, ω) pair —")
	fmt.Println("the redundancy removal that (together with the communication-avoiding")
	fmt.Println("distribution) gives the paper its order-of-magnitude gains.")
}

func randomSlice(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return out
}

func run(p *sdfg.Program, g, dh, dpre []complex128, neigh []int64) []complex128 {
	rt, err := p.Bind(env)
	if err != nil {
		log.Fatal(err)
	}
	must(rt.SetComplex("G", g))
	must(rt.SetComplex("dH", dh))
	must(rt.SetComplex("Dpre", dpre))
	must(rt.SetInt("neigh", neigh))
	must(rt.Run())
	return rt.Complex("Sigma")
}

func check(p *sdfg.Program, g, dh, dpre []complex128, neigh []int64, ref []complex128, what string) {
	got := run(p, g, dh, dpre, neigh)
	var maxDiff float64
	for i := range got {
		if d := cmplx.Abs(got[i] - ref[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\n%s: max |ΔΣ| = %.1e ✓\n", what, maxDiff)
	if maxDiff > 1e-10 {
		log.Fatalf("transformation changed the computation!")
	}
}

func report(p *sdfg.Program, label string) {
	m, err := p.MovementSummary(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  [%s] G reads: %d, dHG writes: %d, total nodes: %d\n",
		label, m.Reads["G"], m.Writes["dHG"], p.CountNodes())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
