// Quickstart: build a small synthetic nano-device, run the self-consistent
// dissipative quantum transport solver with the DaCe-transformed SSE
// kernel, and print the transport observables.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

func main() {
	log.SetFlags(0)

	// A 24-atom 2-D slice (6 columns × 4 rows) — every code path of the
	// full simulator at laptop scale.
	dev, err := device.New(device.Mini())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %d atoms, %d columns × %d rows, %d RGF blocks\n",
		dev.P.NA, dev.P.Cols(), dev.P.Rows, dev.P.Bnum)

	opts := core.DefaultOptions() // DaCe kernel, 0.4 eV bias, damped Born loop
	sim := core.New(dev, opts)
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nBorn iterations: %d (converged: %v)\n", res.Iterations, res.Converged)
	for i, r := range res.Residuals {
		fmt.Printf("  iteration %d: |ΔG|/|G| = %.2e\n", i+1, r)
	}
	fmt.Printf("\nelectron current  I_L = %+.4e, I_R = %+.4e (conservation gap %.1e)\n",
		res.Obs.CurrentL, res.Obs.CurrentR, res.Obs.CurrentL+res.Obs.CurrentR)
	fmt.Printf("phonon heat flow  Q_L = %+.4e, Q_R = %+.4e\n", res.Obs.HeatL, res.Obs.HeatR)

	fmt.Println("\nspectral current (left contact, kz-summed):")
	for e, c := range res.Obs.CurrentPerEnergy {
		fmt.Printf("  E = %+5.2f eV  %s %.3e\n", dev.P.Energy(e), bar(c, res.Obs.CurrentPerEnergy), c)
	}
}

// bar renders a proportional ASCII bar.
func bar(v float64, all []float64) string {
	var max float64
	for _, x := range all {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return ""
	}
	n := int(30 * v / max)
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
