package negfsim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// The packages whose exported API the doc-comment lint enforces — the
// observability layer, the two packages an operator reads first when
// interpreting its output, the service API that clients program against,
// and the autotuner whose schedule files operators hand-edit.
var doclintPackages = []string{
	"internal/obs",
	"internal/comm",
	"internal/core",
	"internal/serve",
	"internal/transport",
	"internal/num",
	"internal/tune",
	"internal/front",
	"internal/device",
	"internal/campaign",
	"internal/egrid",
}

// exportedRecv reports whether a method receiver names an exported type
// (unwrapping pointers and generic instantiations).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return false
		}
	}
}

// TestExportedSymbolsAreDocumented is the doc-comment lint of the tier-1
// gate: every exported top-level function, method on an exported type,
// type, constant and variable in the packages above must carry a doc
// comment (group docs on const/var blocks count).
func TestExportedSymbolsAreDocumented(t *testing.T) {
	for _, dir := range doclintPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() {
							continue
						}
						if d.Recv != nil && !exportedRecv(d.Recv) {
							continue
						}
						if d.Doc == nil {
							t.Errorf("%s: %s lacks a doc comment",
								fset.Position(d.Pos()), d.Name.Name)
						}
					case *ast.GenDecl:
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									t.Errorf("%s: type %s lacks a doc comment",
										fset.Position(s.Pos()), s.Name.Name)
								}
							case *ast.ValueSpec:
								exported := false
								for _, n := range s.Names {
									if n.IsExported() {
										exported = true
									}
								}
								if exported && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									t.Errorf("%s: %s lacks a doc comment",
										fset.Position(s.Pos()), s.Names[0].Name)
								}
							}
						}
					}
				}
			}
		}
	}
}
