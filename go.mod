module negfsim

go 1.22
