// Tuned-vs-default schedule benchmarks (BENCH_6.json): the same GEMM, SSE
// and end-to-end workloads run under the compile-time kernel blocking and
// under a schedule found by a short internal/tune search on this host. The
// two configurations are interleaved inside one benchmark — default, tuned,
// default, tuned — so slow clock drift on a shared box biases neither side;
// each benchmark reports default_ns/op, tuned_ns/op and their ratio
// (tuned_vs_default < 1 means the tuned schedule won, ≈ 1 is parity).
// Parity is the acceptance floor: the defaults were hand-tuned on a machine
// like the CI box, so the measured search should rediscover them or better.
package negfsim

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"negfsim/internal/cmat"
	"negfsim/internal/core"
	"negfsim/internal/sse"
	"negfsim/internal/tune"
)

var (
	schedOnce  sync.Once
	schedTuned tune.Schedule
)

// tunedSchedule runs one short measured search per benchmark binary and
// shares the result across the Sched* benchmarks.
func tunedSchedule() tune.Schedule {
	schedOnce.Do(func() {
		tn := &tune.Tuner{Budget: 1500 * time.Millisecond, Sizes: []int{64, 128, 256}}
		schedTuned = tn.Search()
	})
	return schedTuned
}

// benchSchedPair times workDef under the default blocking and workTuned
// under the tuned blocking, strictly interleaved, and reports the per-side
// times and their ratio. The two work functions are normally the same
// closure; end-to-end passes distinct simulators so the tuned side can also
// carry its worker split.
func benchSchedPair(b *testing.B, tuned cmat.Blocking, workDef, workTuned func()) {
	b.Helper()
	saved := cmat.CurrentBlocking()
	defer func() {
		if err := cmat.SetBlocking(saved); err != nil {
			b.Fatal(err)
		}
	}()
	def := cmat.DefaultBlocking()
	install := func(blk cmat.Blocking) {
		if err := cmat.SetBlocking(blk); err != nil {
			b.Fatal(err)
		}
	}
	// One untimed warm round per side (pool spin-up, pack-buffer allocs).
	install(def)
	workDef()
	install(tuned)
	workTuned()

	var defTotal, tunedTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		install(def)
		start := time.Now()
		workDef()
		defTotal += time.Since(start)

		install(tuned)
		start = time.Now()
		workTuned()
		tunedTotal += time.Since(start)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(defTotal.Nanoseconds())/n, "default_ns/op")
	b.ReportMetric(float64(tunedTotal.Nanoseconds())/n, "tuned_ns/op")
	b.ReportMetric(float64(tunedTotal)/float64(defTotal), "tuned_vs_default")
}

// BenchmarkSchedGEMM is the workload the tuner probes directly: a dense
// square product above the blocked-path threshold.
func BenchmarkSchedGEMM(b *testing.B) {
	tuned := tunedSchedule()
	rng := rand.New(rand.NewSource(42))
	m := cmat.RandomDense(rng, 256, 256)
	n := cmat.RandomDense(rng, 256, 256)
	out := cmat.NewDense(256, 256)
	work := func() {
		for r := 0; r < 4; r++ {
			m.MulInto(out, n)
		}
	}
	benchSchedPair(b, tuned.GEMM, work, work)
}

// BenchmarkSchedSSE runs the DaCe SSE phase — the paper's dominant kernel —
// under both schedules; its product shapes differ from the square probes,
// so this measures how well the tuned blocking generalizes.
func BenchmarkSchedSSE(b *testing.B) {
	tuned := tunedSchedule()
	dev := table7Device(b)
	k := sse.NewKernel(dev)
	rng := rand.New(rand.NewSource(7))
	in := sse.PhaseInput{
		GLess: randomG(rng, dev.P), GGtr: randomG(rng, dev.P),
		DLess: randomD(rng, dev.P), DGtr: randomD(rng, dev.P),
	}
	work := func() {
		k.ComputePhase(in, sse.DaCe)
	}
	benchSchedPair(b, tuned.GEMM, work, work)
}

// BenchmarkSchedEndToEnd runs one full self-consistent Born iteration (RGF
// + SSE + mixing) per side; the tuned side also adopts the tuned worker
// split, matching what `qtsim -tune=cached` would execute.
func BenchmarkSchedEndToEnd(b *testing.B) {
	tuned := tunedSchedule()
	dev := table7Device(b)
	opts := core.DefaultOptions()
	opts.MaxIter = 1
	simDef := core.New(dev, opts)
	tunedOpts := opts
	if tuned.Workers > 0 {
		tunedOpts.Workers = tuned.Workers
	}
	simTuned := core.New(dev, tunedOpts)
	run := func(sim *core.Simulator) func() {
		return func() {
			if _, err := sim.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	benchSchedPair(b, tuned.GEMM, run(simDef), run(simTuned))
}
