# Tier-1 gate: everything a PR must keep green.
.PHONY: check fmt build vet test race race-ft serve-test transport-test peer-test partition-test tune-test front-test device-test campaign-test adapt-test docs-lint bench bench-json

check: fmt build vet test race-ft serve-test transport-test peer-test partition-test tune-test front-test device-test campaign-test adapt-test docs-lint

# gofmt -l prints nothing (and exits 0) on a clean tree; any output fails
# the gate via the grep.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	go build ./...

vet:
	go vet ./...

# Includes the doc-comment lint (doclint_test.go) over the exported API of
# internal/obs, internal/comm and internal/core.
test:
	go test ./...

# Race pass over the packages with shared-memory parallelism (worker pool,
# batched GEMM dispatch, banded MulParInto, SSE tiles, core grid loops).
# -short keeps the core suite tractable under the race runtime.
race:
	go test -race -short ./internal/cmat ./internal/pool ./internal/sse ./internal/core

# Race pass over the fault-tolerance surface, gating `check`: the simulated
# cluster's cancellation/deadline paths and core's recovery loop. -short
# skips the long self-consistent physics runs, keeping the race gate on the
# concurrency-heavy tests.
race-ft:
	go test -race -short ./internal/comm ./internal/core ./internal/serve

# End-to-end smoke test of the qtsimd daemon: builds the real binary,
# starts it on an ephemeral port, submits a job over HTTP, streams its
# iterations, cancels it, runs a second job to completion, and checks the
# SIGTERM drain exits clean.
serve-test:
	go test -count=1 -run TestServeSmoke ./cmd/qtsimd

# Transport conformance under the race detector: both the inproc and the
# loopback-TCP fabrics through the full behavioural suite (ordering,
# cancellation, deadline backstop, dead-peer → ErrRankDead, §4.1 byte
# accounting), plus the transport package's own tests.
transport-test:
	go test -race -count=1 ./internal/transport ./internal/comm

# Multi-process acceptance drill: two qtsimd peer processes run a distributed
# fault-tolerant job over TCP loopback, once cleanly and once with a peer
# SIGKILLed mid-run, and must reproduce the single-process observables.
# Matches both the energy-grid (TestPeerModeEndToEnd) and the spatial-split
# (TestPeerModeEndToEndSpatial) drills.
peer-test:
	go test -count=1 -run TestPeerModeEndToEnd ./cmd/qtsimd

# Spatial-split suite under the race detector: the Schur-complement
# partitioned solver pinned against the sequential recursion, the
# distributed device-partitioned solve on in-process clusters with exact
# byte accounting, and core's spatial GF phase including rank-death
# recovery. The TCP half of the conformance pin runs under transport-test.
partition-test:
	go test -race -count=1 -run 'Partitioned|Distributed' ./internal/rgf
	go test -race -count=1 -run 'Spatial' ./internal/core

# Autotuner gate under the race detector: the search over a fixed probe
# table must be deterministic (same schedule, same probe count, twice), and
# the schedule cache must fall back cleanly on corrupt/stale files. A short
# genuinely-measured search runs too (TestTunerRealProbesSmall) to keep the
# probe kernels honest.
tune-test:
	go test -race -count=1 ./internal/tune

# Front-tier suite under the race detector: content-address
# canonicalization, singleflight dedup with byte-identical streams,
# cache-hit serving, warm starts from adjacent bias points, quota 429s and
# worker-death rerouting against in-process qtsimd workers.
front-test:
	go test -race -count=1 ./internal/front

# Device-zoo suite: spec round-trip/strictness/canonicalization, the
# zone-folding physics pins (metallicity classes, gap ∝ 1/d, junction band
# alignment) and the block-tridiagonal invariants every kind must emit.
device-test:
	go test -race -count=1 ./internal/device

# Campaign suite under the race detector: request validation, the offline
# warm-chained I–V ladder against point-by-point direct runs (1e-8), the
# T(E) artifact, and the HTTP lifecycle end-to-end through a scheduler and
# through the sharded front tier.
campaign-test:
	go test -race -count=1 ./internal/campaign

# Adaptive energy-grid suite under the race detector: the egrid
# controller/quadrature unit tests, the adaptive-vs-uniform agreement pins
# across all four zoo kinds (plus the bit-compatibility pin on the full
# grid), checkpoint/resume and distributed adaptive in core, the
# warm-chained adaptive I–V ladder in campaign, the scheduler dispatch /
# DefaultAdapt / warm-gate tests in serve, and the adapt cache-key
# canonicalization in front.
adapt-test:
	go test -race -count=1 ./internal/egrid
	go test -race -count=1 -run 'Adaptive|UniformRunBit|IntegratedCurrent|SparseGrid|AdaptSpec|AdaptConfig|ParseRejectsUnknownAdapt' ./internal/core
	go test -race -count=1 -run 'Adaptive|DefaultAdapt|PartialGrid' ./internal/campaign ./internal/serve
	go test -race -count=1 -run 'KeyOfAdapt' ./internal/front

# Docs lint: every relative markdown link in README, the root docs and
# docs/ must resolve to an existing file, so renames can't silently rot the
# docs suite.
docs-lint:
	go test -count=1 -run TestDocLinks .

# Table/figure benchmarks plus the kernel-engine micro-benchmarks.
bench:
	go test -bench . -benchtime 3x -run '^$$' .
	go test -bench 'BenchmarkGEMM' -benchtime 20x -run '^$$' ./internal/cmat

# Machine-readable benchmark snapshot for this PR: uniform-vs-adaptive
# converged Born solves on two zoo devices (energy points solved + wall
# time — the convergence-vs-cost record in EXPERIMENTS.md), concatenated
# into one record.
bench-json:
	go test -bench 'BenchmarkAdapt' -benchtime 3x -run '^$$' ./internal/core \
	  | go run ./cmd/benchjson -out BENCH_10.json
	@echo wrote BENCH_10.json
