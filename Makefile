# Tier-1 gate: everything a PR must keep green.
.PHONY: check build vet test race bench

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Race pass over the packages with shared-memory parallelism (worker pool,
# batched GEMM dispatch, banded MulParInto, SSE tiles, core grid loops).
# -short keeps the core suite tractable under the race runtime.
race:
	go test -race -short ./internal/cmat ./internal/pool ./internal/sse ./internal/core

# Table/figure benchmarks plus the kernel-engine micro-benchmarks.
bench:
	go test -bench . -benchtime 3x -run '^$$' .
	go test -bench 'BenchmarkGEMM' -benchtime 20x -run '^$$' ./internal/cmat
