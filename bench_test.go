// Package negfsim's root benchmark harness regenerates every table and
// figure of the paper's evaluation section (§5). Each benchmark prints the
// same rows/series the paper reports; where the paper's numbers come from
// GPU supercomputers, the harness combines measured pure-Go kernel runs at
// reduced scale with the calibrated analytic models (see EXPERIMENTS.md for
// the paper-vs-measured record).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package negfsim

import (
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/perfmodel"
	"negfsim/internal/rgf"
	"negfsim/internal/sse"
	"negfsim/internal/tensor"
)

// -----------------------------------------------------------------------------
// Table 3 — single-iteration computational load (Pflop count)
// -----------------------------------------------------------------------------

// BenchmarkTable3Flops evaluates the analytic flop counts at paper scale
// (they are closed-form, so the benchmark measures evaluation cost and
// prints the table) and cross-checks the DaCe/OMEN kernel flop ratio by
// running the real kernels with the hardware counter at mini scale.
func BenchmarkTable3Flops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, nkz := range []int{3, 5, 7, 9, 11} {
			p := device.Paper4864(nkz)
			_ = perfmodel.ContourFlops(p)
			_ = perfmodel.RGFFlops(p)
			_ = sse.SigmaFlopsOMEN(p)
			_ = sse.SigmaFlopsDaCe(p)
		}
	}
	b.StopTimer()
	b.Log("Table 3: Single Iteration Computational Load (Pflop)")
	for _, nkz := range []int{3, 5, 7, 9, 11} {
		p := device.Paper4864(nkz)
		b.Logf("Nkz=%2d  CI %6.2f  RGF %7.2f  SSE(OMEN) %7.2f  SSE(DaCe) %7.2f",
			nkz, perfmodel.ContourFlops(p)/1e15, perfmodel.RGFFlops(p)/1e15,
			sse.SigmaFlopsOMEN(p)/1e15, sse.SigmaFlopsDaCe(p)/1e15)
	}
	// Empirical cross-check at mini scale with the instrumented kernels.
	dev, err := device.New(device.Mini())
	if err != nil {
		b.Fatal(err)
	}
	k := sse.NewKernel(dev)
	rng := rand.New(rand.NewSource(1))
	g := randomG(rng, dev.P)
	pre := k.PreprocessD(randomD(rng, dev.P))
	cmat.Counter.Reset()
	k.SigmaOMEN(g, pre)
	omen := cmat.Counter.Reset()
	k.SigmaDaCe(g, pre)
	dace := cmat.Counter.Reset()
	b.Logf("measured kernel flops at mini scale: OMEN %d, DaCe %d (ratio %.2f; paper's formula ratio ≈ 0.50)",
		omen, dace, float64(dace)/float64(omen))
}

// -----------------------------------------------------------------------------
// Tables 4 and 5 — SSE communication volume (weak / strong scaling)
// -----------------------------------------------------------------------------

// BenchmarkTable4CommWeak prints the weak-scaling volume table and measures
// the actual byte traffic of both exchange patterns on the simulated
// cluster at mini scale (validating the models that generate the table).
func BenchmarkTable4CommWeak(b *testing.B) {
	p := device.Mini()
	const procs = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := comm.NewCluster(procs)
		if err := c.Run(func(r *comm.Rank) error { return comm.DaCeExchangeSSE(r, p, 2, 2) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("Table 4: Weak Scaling of SSE Communication Volume (TiB)")
	for _, nkz := range []int{3, 5, 7, 9, 11} {
		procs, omen, dace := comm.Table4Row(nkz)
		b.Logf("Nkz=%2d (P=%4d)  OMEN %7.2f  DaCe %5.2f", nkz, procs, omen, dace)
	}
}

// BenchmarkTable5CommStrong prints the strong-scaling volume table; the
// timed body is the OMEN exchange pattern on the mini cluster.
func BenchmarkTable5CommStrong(b *testing.B) {
	p := device.Mini()
	const procs = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := comm.NewCluster(procs)
		if err := c.Run(func(r *comm.Rank) error { return comm.OMENExchangeSSE(r, p) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("Table 5: Strong Scaling of SSE Communication Volume (TiB), Nkz=7")
	for _, procs := range []int{224, 448, 896, 1792, 2688} {
		omen, dace := comm.Table5Row(procs)
		b.Logf("P=%4d  OMEN %7.2f  DaCe %5.2f", procs, omen, dace)
	}
}

// -----------------------------------------------------------------------------
// Table 6 — sparse vs dense 3-matrix multiplication in RGF
// -----------------------------------------------------------------------------

// table6Setup builds the representative RGF triple product F·g·E: two
// sparse Hamiltonian blocks around a dense Green's function block. The
// paper's GPU measurement used cuSPARSE at DFT block sizes; here the block
// is scaled to CPU (n = 256) with Hamiltonian-like ~5% block sparsity.
func table6Setup() (*cmat.CSR, *cmat.Dense, *cmat.CSR) {
	rng := rand.New(rand.NewSource(6))
	const n = 256
	const density = 0.05
	mk := func() *cmat.CSR {
		d := cmat.NewDense(n, n)
		for i := range d.Data {
			if rng.Float64() < density {
				d.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			}
		}
		return cmat.CSRFromDense(d, 0)
	}
	return mk(), cmat.RandomDense(rng, n, n), mk()
}

func BenchmarkTable6DenseMM(b *testing.B) {
	f, g, e := table6Setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmat.TripleProduct(cmat.DenseMM, f, g, e)
	}
}

func BenchmarkTable6CSRMM(b *testing.B) {
	f, g, e := table6Setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmat.TripleProduct(cmat.CSRMM, f, g, e)
	}
}

func BenchmarkTable6CSRGEMM(b *testing.B) {
	f, g, e := table6Setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmat.TripleProduct(cmat.CSRGEMM, f, g, e)
	}
}

// -----------------------------------------------------------------------------
// Table 7 — single-node runtime of the GF and SSE phases per variant
// -----------------------------------------------------------------------------

func table7Device(b *testing.B) *device.Device {
	b.Helper()
	dev, err := device.New(device.Mini())
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func randomG(rng *rand.Rand, p device.Params) *tensor.GTensor {
	g := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return g
}

func randomD(rng *rand.Rand, p device.Params) *tensor.DTensor {
	d := tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	for i := range d.Data {
		d.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return d
}

// The GF phase two ways on an elongated 96-atom, 12-block fin (the regime
// where RGF's O(bnum·bs³) beats dense O((bnum·bs)³)): the naive variant
// inverts the full open-system operator densely (the algorithmic content of
// Table 7's interpreted "Python" row), the optimized variant runs the
// forward/backward RGF recursion. Both produce the same diagonal G^R and
// G^< blocks from the same boundary self-energies (precomputed outside the
// timed region, as OMEN amortizes them across the energy grid).
func table7GFSetup(b *testing.B) (*cmat.BlockTri, []*cmat.Dense) {
	b.Helper()
	p := device.Params{
		Nkz: 3, Nqz: 3, NE: 16, Nw: 4,
		NA: 96, NB: 4, Norb: 2, N3D: 3,
		Rows: 4, Bnum: 12,
		Emin: -1, Emax: 1, Seed: 7,
	}
	dev, err := device.New(p)
	if err != nil {
		b.Fatal(err)
	}
	a := dev.Hamiltonian(0).ShiftDiag(complex(0.05, 1e-6), dev.Overlap(0))
	sigL, sigR, err := rgf.BoundarySelfEnergies(a, 1e-10)
	if err != nil {
		b.Fatal(err)
	}
	a.Diag[0] = a.Diag[0].Sub(sigL)
	a.Diag[a.N-1] = a.Diag[a.N-1].Sub(sigR)
	sigma := make([]*cmat.Dense, a.N)
	for i := range sigma {
		sigma[i] = cmat.NewDense(a.Bs, a.Bs)
	}
	sigma[0].AddScaledInPlace(1i, rgf.Broadening(sigL))
	sigma[a.N-1].AddScaledInPlace(complex(0, 0.2), rgf.Broadening(sigR))
	return a, sigma
}

func BenchmarkTable7GFNaive(b *testing.B) {
	a, sigma := table7GFSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rgf.DenseReference(a, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7GFRGF(b *testing.B) {
	a, sigma := table7GFSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ret, err := rgf.SolveRetarded(a)
		if err != nil {
			b.Fatal(err)
		}
		ret.SolveKeldysh(sigma)
	}
}

func benchSSEVariant(b *testing.B, v sse.Variant) {
	dev := table7Device(b)
	k := sse.NewKernel(dev)
	rng := rand.New(rand.NewSource(7))
	in := sse.PhaseInput{
		GLess: randomG(rng, dev.P), GGtr: randomG(rng, dev.P),
		DLess: randomD(rng, dev.P), DGtr: randomD(rng, dev.P),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ComputePhase(in, v)
	}
}

func BenchmarkTable7SSENaive(b *testing.B) { benchSSEVariant(b, sse.Reference) }
func BenchmarkTable7SSEOMEN(b *testing.B)  { benchSSEVariant(b, sse.OMEN) }
func BenchmarkTable7SSEDaCe(b *testing.B)  { benchSSEVariant(b, sse.DaCe) }

// -----------------------------------------------------------------------------
// Fig. 13 — strong and weak scaling on Piz Daint and Summit (modeled)
// -----------------------------------------------------------------------------

func benchFig13Strong(b *testing.B, m perfmodel.Machine, nodes []int) {
	p := device.Paper4864(7)
	var pts []perfmodel.ScalingPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = perfmodel.StrongScaling(m, p, nodes)
	}
	b.StopTimer()
	b.Logf("Fig. 13 (%s) strong scaling, NA=4864, Nkz=7:", m.Name)
	for _, pt := range pts {
		b.Logf("  %5d GPUs: DaCe %7.1fs (comm %6.1fs) | OMEN %8.1fs (comm %8.1fs) | eff %5.1f%% | speedup %5.1f×",
			pt.GPUs, pt.DaCe.Total(), pt.DaCe.Comm, pt.OMEN.Total(), pt.OMEN.Comm,
			100*pt.ScalingEfficiency, pt.TotalSpeedup)
	}
}

func BenchmarkFig13StrongDaint(b *testing.B) {
	benchFig13Strong(b, perfmodel.PizDaint, []int{112, 224, 448, 900, 1800, 2700, 5400})
}

func BenchmarkFig13StrongSummit(b *testing.B) {
	benchFig13Strong(b, perfmodel.Summit, []int{19, 38, 76, 114, 152, 228})
}

func benchFig13Weak(b *testing.B, m perfmodel.Machine, nodesPerKz int) {
	kzs := []int{3, 5, 7, 9, 11}
	var pts []perfmodel.ScalingPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = perfmodel.WeakScaling(m, kzs, nodesPerKz)
	}
	b.StopTimer()
	b.Logf("Fig. 13 (%s) weak scaling, NA=4864:", m.Name)
	for i, pt := range pts {
		b.Logf("  Nkz=%2d %5d GPUs: DaCe %7.1fs | OMEN %8.1fs | eff %5.1f%% | speedup %5.1f×",
			kzs[i], pt.GPUs, pt.DaCe.Total(), pt.OMEN.Total(),
			100*pt.ScalingEfficiency, pt.TotalSpeedup)
	}
}

func BenchmarkFig13WeakDaint(b *testing.B)  { benchFig13Weak(b, perfmodel.PizDaint, 128) }
func BenchmarkFig13WeakSummit(b *testing.B) { benchFig13Weak(b, perfmodel.Summit, 22) }

// -----------------------------------------------------------------------------
// Table 8 — extreme-scale run on Summit (modeled)
// -----------------------------------------------------------------------------

func BenchmarkTable8ExtremeScale(b *testing.B) {
	var rows []perfmodel.Table8Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = perfmodel.Table8(perfmodel.PaperTable8Configs)
	}
	b.StopTimer()
	b.Log("Table 8: Summit performance on 10,240 atoms (modeled):")
	for _, r := range rows {
		b.Logf("  Nkz=%2d (%4d nodes): GF %5.0f Pflop %6.1fs | SSE %5.0f Pflop %6.1fs | comm %6.1fs",
			r.Nkz, r.Nodes, r.GFPflop, r.GFTime, r.SSEPflop, r.SSETime, r.CommTime)
	}
	p := device.Paper10240(21)
	t := perfmodel.Summit.Project(p, 3525, perfmodel.DaCe)
	b.Logf("  sustained: %.1f Pflop/s (paper: 19.71)", perfmodel.SustainedPflops(p, t))
}

// -----------------------------------------------------------------------------
// End-to-end: one full self-consistent iteration (the §5 headline workload
// at mini scale) and the distributed communication-avoiding SSE phase
// -----------------------------------------------------------------------------

func BenchmarkEndToEndIteration(b *testing.B) {
	dev := table7Device(b)
	opts := core.DefaultOptions()
	opts.MaxIter = 1
	sim := core.New(dev, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedSSE(b *testing.B) {
	dev := table7Device(b)
	sim := core.New(dev, core.DefaultOptions())
	rng := rand.New(rand.NewSource(11))
	in := sse.PhaseInput{
		GLess: randomG(rng, dev.P), GGtr: randomG(rng, dev.P),
		DLess: randomD(rng, dev.P), DGtr: randomD(rng, dev.P),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.DistributedSSE(in, 2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// -----------------------------------------------------------------------------
// Ablation benches — the design choices DESIGN.md calls out
// -----------------------------------------------------------------------------

// BenchmarkAblationSSELayout isolates the Fig. 10(c) data-layout
// transformation: the DaCe kernel with and without atom-major G storage
// (same algorithm, same flops, different locality and GEMM granularity).
func ablationDevice(b *testing.B) *device.Device {
	b.Helper()
	// Larger (kz, E) grid and more orbitals than Mini so the fused GEMM has
	// real rows to chew on (Nkz·NE·Norb = 768).
	p := device.Params{
		Nkz: 3, Nqz: 3, NE: 64, Nw: 8,
		NA: 24, NB: 4, Norb: 4, N3D: 3,
		Rows: 4, Bnum: 3,
		Emin: -1, Emax: 1, Seed: 7,
	}
	dev, err := device.New(p)
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func BenchmarkAblationSSELayoutAtomMajor(b *testing.B) {
	dev := ablationDevice(b)
	k := sse.NewKernel(dev)
	rng := rand.New(rand.NewSource(21))
	g := randomG(rng, dev.P)
	pre := k.PreprocessD(randomD(rng, dev.P))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.SigmaDaCe(g, pre)
	}
}

func BenchmarkAblationSSELayoutOriginal(b *testing.B) {
	dev := ablationDevice(b)
	k := sse.NewKernel(dev)
	rng := rand.New(rand.NewSource(21))
	g := randomG(rng, dev.P)
	pre := k.PreprocessD(randomD(rng, dev.P))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.SigmaDaCeNoLayout(g, pre)
	}
}

// BenchmarkAblationGEMM compares the serial and row-banded parallel GEMM on
// the fused (Nkz·NE·Norb) × Norb × Norb product shape of the DaCe SSE stage.
func BenchmarkAblationGEMMSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	m := cmat.RandomDense(rng, 4096, 12)
	n := cmat.RandomDense(rng, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mul(n)
	}
}

func BenchmarkAblationGEMMParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	m := cmat.RandomDense(rng, 4096, 12)
	n := cmat.RandomDense(rng, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulPar(n, 4)
	}
}

// BenchmarkAblationTileChoice shows what the §4.1 exhaustive search buys:
// communication volume of the best, worst and energy-only decompositions
// for the Table 5 configuration.
func BenchmarkAblationTileChoice(b *testing.B) {
	p := device.Paper4864(7)
	var best comm.Decomposition
	var feasible []comm.Decomposition
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, feasible = comm.SearchTiles(p, 1792, 0)
	}
	b.StopTimer()
	worst := best
	for _, d := range feasible {
		if d.Bytes > worst.Bytes {
			worst = d
		}
	}
	b.Logf("tile search over %d candidates: best TE=%d×TA=%d %.2f TiB | worst TE=%d×TA=%d %.2f TiB (%.1f×)",
		len(feasible), best.TE, best.TA, comm.TiB(best.Bytes),
		worst.TE, worst.TA, comm.TiB(worst.Bytes), worst.Bytes/best.Bytes)
}

// BenchmarkAblationMixing compares Born-loop convergence cost: damped
// linear mixing versus Anderson acceleration (GF phases are the expensive
// unit; fewer iterations = faster time-to-solution).
func BenchmarkAblationMixingLinear(b *testing.B)   { benchMixer(b, core.Linear) }
func BenchmarkAblationMixingAnderson(b *testing.B) { benchMixer(b, core.Anderson) }

func benchMixer(b *testing.B, kind core.MixerKind) {
	dev := table7Device(b)
	opts := core.DefaultOptions()
	opts.MaxIter = 20
	opts.Tol = 1e-6
	opts.Mixing = 0.5
	opts.Mixer = kind
	b.ResetTimer()
	var iters int
	var conv bool
	for i := 0; i < b.N; i++ {
		res, err := core.New(dev, opts).Run()
		if err != nil {
			b.Fatal(err)
		}
		iters, conv = res.Iterations, res.Converged
	}
	b.StopTimer()
	b.Logf("Born iterations: %d (converged %v)", iters, conv)
}

// BenchmarkAblationSpatialRGF compares the sequential recursion against the
// Schur-complement spatial decomposition (OMEN's third MPI level) on a long
// chain. The decomposition performs ~3–4× the flops of the sequential pass
// (two-sided local recursions + border strips + recovery) in exchange for
// segment parallelism; on a multicore host the 8-way version amortizes
// that, while on a single-core host (like this repo's CI box — see
// EXPERIMENTS.md) the benchmark measures exactly the redundancy overhead.
func BenchmarkAblationSpatialRGFSequential(b *testing.B) {
	a := spatialChain(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgf.SolveRetarded(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpatialRGFPartitioned(b *testing.B) {
	a := spatialChain(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgf.PartitionedRetarded(a, 8, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func spatialChain(b *testing.B) *cmat.BlockTri {
	b.Helper()
	rng := rand.New(rand.NewSource(31))
	const n, bs = 64, 32
	a := cmat.NewBlockTri(n, bs)
	for i := 0; i < n; i++ {
		a.Diag[i] = cmat.RandomHermitian(rng, bs, 0).Scale(-1)
		for j := 0; j < bs; j++ {
			a.Diag[i].Set(j, j, a.Diag[i].At(j, j)+complex(3, 0.5))
		}
	}
	for i := 0; i < n-1; i++ {
		a.Upper[i] = cmat.RandomDense(rng, bs, bs).Scale(0.3)
		a.Lower[i] = a.Upper[i].ConjTranspose()
	}
	return a
}
