// Command qtfront is the sharded front tier: a scheduler/router that spreads
// jobs across a fleet of qtsimd workers, dedupes identical submissions onto
// one in-flight run, serves repeated submissions from a content-addressed
// result cache, warm-starts near-miss bias points from cached checkpoints,
// and enforces per-tenant admission quotas.
//
// The fleet is described by a JSON file (see examples/fleet.json and
// docs/DEPLOY.md):
//
//	qtsimd -addr 127.0.0.1:8081 &
//	qtsimd -addr 127.0.0.1:8082 &
//	qtfront -fleet examples/fleet.json
//	curl -H 'X-Tenant: alice' -d @examples/run.json localhost:8090/v1/jobs
//	curl localhost:8090/v1/jobs/f1/stream         # NDJSON, one line per Born iteration
//	curl localhost:8090/v1/jobs/f1/result
//
// The client-facing API is a superset of the qtsimd job API, so tooling
// written against one worker talks to the whole fleet unchanged; docs/API.md
// is the complete reference. /metrics exposes the front.* counter families
// (cache_hits, dedup_joins, quota_rejections, worker_evictions, ...) next to
// whatever solver metrics the process itself would report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"negfsim/internal/campaign"
	"negfsim/internal/front"
	"negfsim/internal/obs"
)

func main() {
	fleetPath := flag.String("fleet", "", "fleet config JSON (see examples/fleet.json); overrides -addr/-workers")
	addr := flag.String("addr", "127.0.0.1:8090", "listen address for the front API")
	workers := flag.String("workers", "", "comma-separated qtsimd base URLs (http://host:port); alternative to -fleet")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant submissions per second (0 disables quotas)")
	quotaBurst := flag.Int("quota-burst", 8, "per-tenant admission burst")
	cacheMax := flag.Int("cache-max", 256, "content-addressed cache entries kept")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	obs.Enable()

	var cfg front.Config
	listen := *addr
	if *fleetPath != "" {
		fc, err := front.LoadFleetConfig(*fleetPath)
		if err != nil {
			log.Fatalf("qtfront: %v", err)
		}
		cfg = fc.FrontConfig()
		listen = fc.Listen
	} else {
		if *workers == "" {
			log.Fatal("qtfront: need -fleet FILE or -workers URL,URL,...")
		}
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.Workers = append(cfg.Workers, u)
			}
		}
		cfg.QuotaRate = *quotaRate
		cfg.QuotaBurst = *quotaBurst
		cfg.CacheMax = *cacheMax
	}

	f := front.New(cfg)

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("qtfront: %v", err)
	}
	// Campaigns submitted to the front fan their ladder points across the
	// fleet; warm starts come from the front's own family cache, so the
	// campaign tier never ships checkpoints itself here.
	mgr := campaign.NewManager(campaign.FrontBackend{F: f, Tenant: "campaign"}, 4)
	mux := http.NewServeMux()
	campaign.NewAPI(mgr).Register(mux)
	mux.Handle("/", front.NewAPI(f).Handler())
	srv := &http.Server{Handler: mux}

	// Print the bound address (not the flag value) so -addr :0 scripts can
	// discover the port.
	fmt.Printf("qtfront listening on %s (workers=%d quota-rate=%.3g cache-max=%d)\n",
		ln.Addr(), len(cfg.Workers), cfg.QuotaRate, cfg.CacheMax)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("qtfront: %v, draining", sig)
	case err := <-errc:
		log.Fatalf("qtfront: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("qtfront: http shutdown: %v", err)
	}
	if err := mgr.Close(ctx); err != nil {
		log.Printf("qtfront: campaign shutdown: %v", err)
	}
	if err := f.Close(ctx); err != nil {
		log.Printf("qtfront: front shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("qtfront: serve: %v", err)
	}
	log.Print("qtfront: drained")
}
