// Command commvol regenerates Tables 4 and 5 of the paper: the total SSE
// communication volume (TiB) of the original OMEN scheme versus the
// communication-avoiding DaCe scheme, in weak scaling (process count grows
// with Nkz) and strong scaling (fixed Nkz = 7).
package main

import (
	"flag"
	"fmt"
	"log"

	"negfsim/internal/comm"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "both", "weak | strong | both")
	flag.Parse()

	if *mode == "weak" || *mode == "both" {
		fmt.Println("Table 4: Weak Scaling of SSE Communication Volume (TiB)")
		fmt.Printf("%-10s %-12s %12s %12s %10s\n", "Nkz", "Processes", "OMEN", "DaCe", "ratio")
		for _, nkz := range []int{3, 5, 7, 9, 11} {
			procs, omen, dace := comm.Table4Row(nkz)
			fmt.Printf("%-10d %-12d %12.2f %12.2f %9.0f×\n", nkz, procs, omen, dace, omen/dace)
		}
		fmt.Println("paper prints: OMEN 32.11/89.18/174.80/288.95/431.65,")
		fmt.Println("              DaCe 0.54/1.22/2.17/3.38/4.86")
		fmt.Println()
	}
	if *mode == "strong" || *mode == "both" {
		fmt.Println("Table 5: Strong Scaling of SSE Communication Volume (TiB), Nkz = 7")
		fmt.Printf("%-12s %12s %12s %10s\n", "Processes", "OMEN", "DaCe", "ratio")
		for _, procs := range []int{224, 448, 896, 1792, 2688} {
			omen, dace := comm.Table5Row(procs)
			fmt.Printf("%-12d %12.2f %12.2f %9.0f×\n", procs, omen, dace, omen/dace)
		}
		fmt.Println("paper prints: OMEN 108.24/117.75/136.76/174.80/212.84,")
		fmt.Println("              DaCe 0.95/1.13/1.48/2.17/2.87")
	}
}
