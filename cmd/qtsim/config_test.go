package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"negfsim/internal/core"
)

// TestFlagsOverrideConfigFile pins the -config contract: values from the
// file win over built-in defaults, and explicitly-set flags win over the
// file — while file values for flags the user did not set survive.
func TestFlagsOverrideConfigFile(t *testing.T) {
	fileCfg := core.DefaultRunConfig()
	fileCfg.Device.NA = 48
	fileCfg.Device.Rows = 4
	fileCfg.Device.Bnum = 4
	fileCfg.MaxIter = 9
	fileCfg.Variant = "omen"
	raw, err := fileCfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("qtsim", flag.ContinueOnError)
	f := registerConfigFlags(fs)
	if err := fs.Parse([]string{"-iters", "3", "-nkz", "2", "-dist", "2x2"}); err != nil {
		t.Fatal(err)
	}

	cfg, err := core.LoadRunConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	applyConfigFlags(fs, f, cfg)

	if cfg.MaxIter != 3 {
		t.Errorf("MaxIter = %d, want flag value 3 over file value 9", cfg.MaxIter)
	}
	if cfg.Device.Nkz != 2 || cfg.Device.Nqz != 2 {
		t.Errorf("Nkz/Nqz = %d/%d, want 2/2 (flag overrides both momentum grids)", cfg.Device.Nkz, cfg.Device.Nqz)
	}
	if cfg.Dist != "2x2" {
		t.Errorf("Dist = %q, want flag value 2x2", cfg.Dist)
	}
	if cfg.Device.NA != 48 || cfg.Variant != "omen" {
		t.Errorf("unset flags must keep file values: NA=%d variant=%q", cfg.Device.NA, cfg.Variant)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("merged config invalid: %v", err)
	}
}

// TestUnsetFlagsKeepDefaults guards the zero-flag invocation: with nothing
// parsed, applyConfigFlags must not touch the config at all.
func TestUnsetFlagsKeepDefaults(t *testing.T) {
	fs := flag.NewFlagSet("qtsim", flag.ContinueOnError)
	f := registerConfigFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultRunConfig()
	applyConfigFlags(fs, f, &cfg)
	if cfg != core.DefaultRunConfig() {
		t.Fatalf("config mutated by unset flags: %+v", cfg)
	}
}
