package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

// TestFlagsOverrideConfigFile pins the -config contract: values from the
// file win over built-in defaults, and explicitly-set flags win over the
// file — while file values for flags the user did not set survive.
func TestFlagsOverrideConfigFile(t *testing.T) {
	fileCfg := core.DefaultRunConfig()
	fg := fileCfg.Device.Grid()
	fg.NA = 48
	fg.Rows = 4
	fg.Bnum = 4
	fileCfg.Device = device.WrapParams(fg)
	fileCfg.MaxIter = 9
	fileCfg.Variant = "omen"
	raw, err := fileCfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("qtsim", flag.ContinueOnError)
	f := registerConfigFlags(fs)
	if err := fs.Parse([]string{"-iters", "3", "-nkz", "2", "-dist", "2x2"}); err != nil {
		t.Fatal(err)
	}

	cfg, err := core.LoadRunConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyConfigFlags(fs, f, cfg); err != nil {
		t.Fatal(err)
	}
	grid := cfg.Device.Grid()

	if cfg.MaxIter != 3 {
		t.Errorf("MaxIter = %d, want flag value 3 over file value 9", cfg.MaxIter)
	}
	if grid.Nkz != 2 || grid.Nqz != 2 {
		t.Errorf("Nkz/Nqz = %d/%d, want 2/2 (flag overrides both momentum grids)", grid.Nkz, grid.Nqz)
	}
	if cfg.Dist != "2x2" {
		t.Errorf("Dist = %q, want flag value 2x2", cfg.Dist)
	}
	if grid.NA != 48 || cfg.Variant != "omen" {
		t.Errorf("unset flags must keep file values: NA=%d variant=%q", grid.NA, cfg.Variant)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("merged config invalid: %v", err)
	}
}

// TestUnsetFlagsKeepDefaults guards the zero-flag invocation: with nothing
// parsed, applyConfigFlags must not touch the config at all.
func TestUnsetFlagsKeepDefaults(t *testing.T) {
	fs := flag.NewFlagSet("qtsim", flag.ContinueOnError)
	f := registerConfigFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultRunConfig()
	if err := applyConfigFlags(fs, f, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg != core.DefaultRunConfig() {
		t.Fatalf("config mutated by unset flags: %+v", cfg)
	}
}
