package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"negfsim/internal/campaign"
)

// runCampaign is the -campaign offline mode: load a campaign request,
// execute its bias ladder in-process (warm-chaining by default), print a
// per-point summary, and emit the artifacts — PREFIX.csv and PREFIX.json
// when -campaign-out is set, the CSV to stdout otherwise.
func runCampaign(path, out string, workers int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req campaign.Request
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("parsing campaign request %s: %w", path, err)
	}

	mgr := campaign.NewManager(campaign.LocalBackend{Workers: workers}, 0)
	c, err := mgr.Start(req)
	if err != nil {
		return err
	}
	ladder := req.Ladder()
	fmt.Printf("campaign: %s over %d bias points (warm chaining: %v), device kind %s\n",
		req.Kind, len(ladder), req.Warm(), req.Config.Device.Kind())

	state, _ := c.Wait(context.Background())
	st := c.Status()
	for i, p := range st.Points {
		switch p.State {
		case campaign.PointDone:
			warm := ""
			if p.WarmStarted {
				warm = "  (warm)"
			}
			fmt.Printf("  point %d: bias %+.4f  I_L %+.6e  I_R %+.6e  %d iterations%s\n",
				i, p.Bias, p.CurrentL, p.CurrentR, p.Iterations, warm)
		default:
			fmt.Printf("  point %d: bias %+.4f  %s  %s\n", i, p.Bias, p.State, p.Error)
		}
	}
	if state != campaign.StateSucceeded {
		return fmt.Errorf("campaign %s: %s", state, st.Error)
	}

	csv, err := c.CSV()
	if err != nil {
		return err
	}
	if out == "" {
		fmt.Println()
		os.Stdout.Write(csv)
	} else {
		js, err := c.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out+".csv", csv, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(out+".json", js, 0o644); err != nil {
			return err
		}
		fmt.Printf("artifacts written to %s.csv and %s.json\n", out, out)
	}
	return mgr.Close(context.Background())
}
