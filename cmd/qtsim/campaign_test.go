package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negfsim/internal/campaign"
	"negfsim/internal/core"
	"negfsim/internal/device"
)

// TestExampleCampaignParses pins examples/campaign.json: the annotated
// example must strictly decode and validate — the doc cannot rot away
// from the schema.
func TestExampleCampaignParses(t *testing.T) {
	data, err := os.ReadFile("../../examples/campaign.json")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req campaign.Request
	if err := dec.Decode(&req); err != nil {
		t.Fatalf("examples/campaign.json does not decode: %v", err)
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("examples/campaign.json does not validate: %v", err)
	}
	if req.Config.Device.Kind() != "cnt" {
		t.Fatalf("example device kind %q, want the cnt showcase", req.Config.Device.Kind())
	}
	if got := len(req.Ladder()); got != 9 {
		t.Fatalf("example ladder has %d points, want 9", got)
	}
}

// TestRunCampaignWritesArtifacts drives the -campaign offline mode end to
// end: a small warm-chained ladder over a chain-junction device, with the
// CSV and JSON artifacts landing at the -campaign-out prefix.
func TestRunCampaignWritesArtifacts(t *testing.T) {
	cfg := core.DefaultRunConfig()
	cfg.Device = device.WrapSpec(device.Chain{
		Cols: 8, Step: 0.2, NE: 10, Nw: 3, NB: 3, Bnum: 4,
	})
	cfg.MaxIter = 30
	cfg.Mixer = "anderson"
	cfg.Mixing = 0.8
	cfg.Tol = 1e-8
	req := campaign.Request{
		Kind:       campaign.IV,
		Config:     cfg,
		BiasStart:  0.2,
		BiasStop:   0.4,
		BiasPoints: 3,
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "iv")
	if err := runCampaign(path, out, 0); err != nil {
		t.Fatal(err)
	}

	csv, err := os.ReadFile(out + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 4 {
		t.Fatalf("artifact CSV has %d lines, want header + 3 rows", len(lines))
	}

	js, err := os.ReadFile(out + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var doc campaign.ArtifactDoc
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != campaign.IV || len(doc.IV) != 3 {
		t.Fatalf("artifact doc: kind %s, %d rows", doc.Kind, len(doc.IV))
	}
	for i, row := range doc.IV {
		if !row.Converged {
			t.Errorf("row %d not converged", i)
		}
		if got, want := row.WarmStarted, i > 0; got != want {
			t.Errorf("row %d warm_started = %t, want %t", i, got, want)
		}
	}
}
