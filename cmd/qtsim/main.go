// Command qtsim runs a self-consistent dissipative quantum transport
// simulation on a synthetic nano-device and reports currents, heat flow and
// the convergence history.
//
// Example:
//
//	qtsim -na 48 -rows 4 -bnum 4 -nkz 3 -ne 24 -variant dace -iters 6
//
// With -metrics-addr the process serves Prometheus-style metrics, expvar
// and net/http/pprof while the simulation runs; with -trace-out it writes
// one JSON line per outer Born iteration (a Table 7-style phase
// breakdown). Either flag enables the observability layer and an
// end-of-run summary table. See docs/OBSERVABILITY.md.
//
// With -dist TExTA the SSE phase runs on a simulated rank grid with fault
// tolerance: -checkpoint persists a restartable snapshot every iteration,
// -comm-timeout bounds failure detection, and -inject-fault ITER:RANK[:OP]
// kills a rank mid-run to demonstrate checkpointed recovery (the run
// rebuilds a smaller cluster and still converges to the fault-free
// observables).
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"negfsim/internal/comm"
	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/obs"
	"negfsim/internal/sse"
)

// traceLine is the JSON schema of one -trace-out record. The four phase
// durations sum exactly to wall: "other" absorbs residual computation and
// bookkeeping, so consumers can treat the line as a complete partition of
// the iteration (the Table 7 reading). Span deltas are cumulative across
// workers and may exceed wall under parallel execution.
type traceLine struct {
	Iter      int              `json:"iter"`
	WallNs    int64            `json:"wall_ns"`
	Phases    map[string]int64 `json:"phases_ns"`
	Residual  *float64         `json:"residual,omitempty"`
	Converged bool             `json:"converged"`
	Spans     map[string]int64 `json:"spans_ns,omitempty"`
}

// traceWriter serializes IterStats to the -trace-out file.
func traceWriter(f *os.File) func(core.IterStats) {
	enc := json.NewEncoder(f)
	return func(st core.IterStats) {
		other := st.Wall - st.GF - st.SSE - st.Mix
		if other < 0 {
			other = 0
		}
		line := traceLine{
			Iter:   st.Iter,
			WallNs: st.Wall.Nanoseconds(),
			Phases: map[string]int64{
				"gf":    st.GF.Nanoseconds(),
				"sse":   st.SSE.Nanoseconds(),
				"mix":   st.Mix.Nanoseconds(),
				"other": other.Nanoseconds(),
			},
			Converged: st.Converged,
		}
		if !math.IsNaN(st.Residual) {
			r := st.Residual
			line.Residual = &r
		}
		if len(st.Spans) > 0 {
			line.Spans = make(map[string]int64, len(st.Spans))
			for _, s := range st.Spans {
				line.Spans[s.Name] = s.Total.Nanoseconds()
			}
		}
		if err := enc.Encode(line); err != nil {
			log.Printf("trace write: %v", err)
		}
	}
}

// serveMetrics starts the diagnostics endpoint: Prometheus text at
// /metrics, the expvar JSON dump at /debug/vars, and the full pprof
// suite under /debug/pprof/.
func serveMetrics(addr string) {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("metrics server: %v", err)
		}
	}()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qtsim: ")

	na := flag.Int("na", 24, "number of atoms")
	rows := flag.Int("rows", 4, "atoms per column (fin height)")
	bnum := flag.Int("bnum", 3, "RGF blocks")
	nkz := flag.Int("nkz", 3, "electron/phonon momentum points")
	ne := flag.Int("ne", 16, "energy grid points")
	nw := flag.Int("nw", 4, "phonon frequencies")
	nb := flag.Int("nb", 4, "neighbors per atom")
	norb := flag.Int("norb", 2, "orbitals per atom")
	variant := flag.String("variant", "dace", "SSE kernel: reference | omen | dace")
	iters := flag.Int("iters", 6, "max Born iterations")
	tol := flag.Float64("tol", 1e-4, "convergence tolerance on G")
	mix := flag.Float64("mix", 0.5, "self-energy mixing factor")
	bias := flag.Float64("bias", 0.4, "source-drain bias (MuL−MuR) [eV]")
	kt := flag.Float64("kt", 0.025, "electron thermal energy [eV]")
	seed := flag.Uint64("seed", 7, "structure seed")
	gate := flag.Float64("gate", math.NaN(), "gate voltage [V]; enables the coupled NEGF–Poisson solver")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
	traceOut := flag.String("trace-out", "", "write one JSON line per Born iteration to this file")
	dist := flag.String("dist", "", "run the SSE phase on a simulated TExTA rank grid, e.g. 2x2 (fault-tolerant)")
	commTimeout := flag.Duration("comm-timeout", 0, "per-operation deadline of the simulated cluster (default 10s)")
	injectFault := flag.String("inject-fault", "", "kill a rank mid-run: ITER:RANK[:OP] (0-based Born iteration, rank id, comm op; requires -dist)")
	checkpoint := flag.String("checkpoint", "", "gob checkpoint file: resumed from if present, written after every iteration (distributed) or at the end (serial)")
	flag.Parse()

	p := device.Params{
		Nkz: *nkz, Nqz: *nkz, NE: *ne, Nw: *nw,
		NA: *na, NB: *nb, Norb: *norb, N3D: 3,
		Rows: *rows, Bnum: *bnum,
		Emin: -1, Emax: 1, Seed: *seed,
	}
	dev, err := device.New(p)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.MaxIter = *iters
	opts.Tol = *tol
	opts.Mixing = *mix
	opts.Contacts.MuL = *bias / 2
	opts.Contacts.MuR = -*bias / 2
	opts.Contacts.KT = *kt
	switch strings.ToLower(*variant) {
	case "reference":
		opts.Variant = sse.Reference
	case "omen":
		opts.Variant = sse.OMEN
	case "dace":
		opts.Variant = sse.DaCe
	default:
		log.Fatalf("unknown variant %q", *variant)
	}

	var distTE, distTA int
	if *dist != "" {
		if !math.IsNaN(*gate) {
			log.Fatal("-dist and -gate are mutually exclusive (the Poisson loop runs serial)")
		}
		if _, err := fmt.Sscanf(*dist, "%dx%d", &distTE, &distTA); err != nil || distTE < 1 || distTA < 1 {
			log.Fatalf("-dist must look like TExTA (e.g. 2x2), got %q", *dist)
		}
	}
	var faultPlan *comm.FaultPlan
	var faultIter int
	if *injectFault != "" {
		if *dist == "" {
			log.Fatal("-inject-fault requires -dist")
		}
		var rank, op int
		if _, err := fmt.Sscanf(*injectFault, "%d:%d:%d", &faultIter, &rank, &op); err != nil {
			op = 0
			if _, err := fmt.Sscanf(*injectFault, "%d:%d", &faultIter, &rank); err != nil {
				log.Fatalf("-inject-fault must look like ITER:RANK or ITER:RANK:OP, got %q", *injectFault)
			}
		}
		faultPlan = &comm.FaultPlan{Kill: true, KillRank: rank, KillAtOp: op}
	}
	var resume *core.Checkpoint
	if *checkpoint != "" {
		if f, err := os.Open(*checkpoint); err == nil {
			ck, lerr := core.LoadCheckpoint(f)
			f.Close()
			if lerr != nil {
				log.Fatal(lerr)
			}
			if cerr := ck.Compatible(p); cerr != nil {
				log.Fatal(cerr)
			}
			resume = ck
			fmt.Printf("resuming from %s (iteration %d)\n", *checkpoint, ck.Iterations)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}

	observing := *metricsAddr != "" || *traceOut != ""
	if observing {
		obs.Enable()
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts.OnIteration = traceWriter(f)
	}

	fmt.Printf("structure: NA=%d (%d×%d), Nkz=%d, NE=%d, Nω=%d, NB=%d, Norb=%d\n",
		p.NA, p.Cols(), p.Rows, p.Nkz, p.NE, p.Nw, p.NB, p.Norb)
	fmt.Printf("solver: %s kernel, ≤%d iterations, mixing %.2f, bias %.2f eV\n",
		opts.Variant, opts.MaxIter, opts.Mixing, *bias)

	start := time.Now()
	sim := core.New(dev, opts)
	var res *core.Result
	switch {
	case distTE > 0:
		cfg := core.DistConfig{
			TE: distTE, TA: distTA,
			CommTimeout:    *commTimeout,
			Fault:          faultPlan,
			FaultIter:      faultIter,
			CheckpointPath: *checkpoint,
			Resume:         resume,
		}
		r, bytes, err := sim.RunDistributedFT(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndistributed SSE on %dx%d ranks: %.2f MiB exchanged, %d recover%s\n",
			distTE, distTA, float64(bytes)/(1<<20), r.Recoveries,
			map[bool]string{true: "y", false: "ies"}[r.Recoveries == 1])
		res = r
	case !math.IsNaN(*gate):
		g := core.DefaultGate(*gate, 0)
		es, err := sim.RunWithPoisson(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nGummel: %d outer iterations (converged: %v)\n", es.OuterIterations, es.GummelConverged)
		res = es.Result
	default:
		var err error
		if resume != nil {
			res, err = sim.RunFrom(resume)
		} else {
			res, err = sim.Run()
		}
		if err != nil {
			log.Fatal(err)
		}
		if *checkpoint != "" {
			f, err := os.Create(*checkpoint)
			if err != nil {
				log.Fatal(err)
			}
			if err := core.CheckpointOf(p, res).Save(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint written to %s\n", *checkpoint)
		}
	}
	wall := time.Since(start)

	fmt.Printf("\niterations: %d (converged: %v)\n", res.Iterations, res.Converged)
	for i, r := range res.Residuals {
		fmt.Printf("  iter %d: |ΔG| = %.3e\n", i+1, r)
	}
	fmt.Printf("\nelectron current:  I_L = %+.6e   I_R = %+.6e\n", res.Obs.CurrentL, res.Obs.CurrentR)
	fmt.Printf("phonon heat flow:  Q_L = %+.6e   Q_R = %+.6e\n", res.Obs.HeatL, res.Obs.HeatR)

	var dmax float64
	amax := 0
	for a, d := range res.Obs.DissipationPerAtom {
		if d > dmax {
			dmax, amax = d, a
		}
	}
	if dmax > 0 {
		fmt.Printf("hottest atom: #%d at column %d (dissipation %.3e)\n",
			amax, dev.Col(amax), dmax)
	}

	if observing {
		fmt.Println()
		obs.WriteSummary(os.Stdout, wall)
	}
}
