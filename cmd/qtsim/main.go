// Command qtsim runs a self-consistent dissipative quantum transport
// simulation on a synthetic nano-device and reports currents, heat flow and
// the convergence history.
//
// Example:
//
//	qtsim -na 48 -rows 4 -bnum 4 -nkz 3 -ne 24 -variant dace -iters 6
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/sse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qtsim: ")

	na := flag.Int("na", 24, "number of atoms")
	rows := flag.Int("rows", 4, "atoms per column (fin height)")
	bnum := flag.Int("bnum", 3, "RGF blocks")
	nkz := flag.Int("nkz", 3, "electron/phonon momentum points")
	ne := flag.Int("ne", 16, "energy grid points")
	nw := flag.Int("nw", 4, "phonon frequencies")
	nb := flag.Int("nb", 4, "neighbors per atom")
	norb := flag.Int("norb", 2, "orbitals per atom")
	variant := flag.String("variant", "dace", "SSE kernel: reference | omen | dace")
	iters := flag.Int("iters", 6, "max Born iterations")
	tol := flag.Float64("tol", 1e-4, "convergence tolerance on G")
	mix := flag.Float64("mix", 0.5, "self-energy mixing factor")
	bias := flag.Float64("bias", 0.4, "source-drain bias (MuL−MuR) [eV]")
	kt := flag.Float64("kt", 0.025, "electron thermal energy [eV]")
	seed := flag.Uint64("seed", 7, "structure seed")
	gate := flag.Float64("gate", math.NaN(), "gate voltage [V]; enables the coupled NEGF–Poisson solver")
	flag.Parse()

	p := device.Params{
		Nkz: *nkz, Nqz: *nkz, NE: *ne, Nw: *nw,
		NA: *na, NB: *nb, Norb: *norb, N3D: 3,
		Rows: *rows, Bnum: *bnum,
		Emin: -1, Emax: 1, Seed: *seed,
	}
	dev, err := device.New(p)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.MaxIter = *iters
	opts.Tol = *tol
	opts.Mixing = *mix
	opts.Contacts.MuL = *bias / 2
	opts.Contacts.MuR = -*bias / 2
	opts.Contacts.KT = *kt
	switch strings.ToLower(*variant) {
	case "reference":
		opts.Variant = sse.Reference
	case "omen":
		opts.Variant = sse.OMEN
	case "dace":
		opts.Variant = sse.DaCe
	default:
		log.Fatalf("unknown variant %q", *variant)
	}

	fmt.Printf("structure: NA=%d (%d×%d), Nkz=%d, NE=%d, Nω=%d, NB=%d, Norb=%d\n",
		p.NA, p.Cols(), p.Rows, p.Nkz, p.NE, p.Nw, p.NB, p.Norb)
	fmt.Printf("solver: %s kernel, ≤%d iterations, mixing %.2f, bias %.2f eV\n",
		opts.Variant, opts.MaxIter, opts.Mixing, *bias)

	sim := core.New(dev, opts)
	var res *core.Result
	if !math.IsNaN(*gate) {
		g := core.DefaultGate(*gate, 0)
		es, err := sim.RunWithPoisson(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nGummel: %d outer iterations (converged: %v)\n", es.OuterIterations, es.GummelConverged)
		res = es.Result
	} else {
		var err error
		res, err = sim.Run()
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\niterations: %d (converged: %v)\n", res.Iterations, res.Converged)
	for i, r := range res.Residuals {
		fmt.Printf("  iter %d: |ΔG| = %.3e\n", i+1, r)
	}
	fmt.Printf("\nelectron current:  I_L = %+.6e   I_R = %+.6e\n", res.Obs.CurrentL, res.Obs.CurrentR)
	fmt.Printf("phonon heat flow:  Q_L = %+.6e   Q_R = %+.6e\n", res.Obs.HeatL, res.Obs.HeatR)

	var dmax float64
	amax := 0
	for a, d := range res.Obs.DissipationPerAtom {
		if d > dmax {
			dmax, amax = d, a
		}
	}
	if dmax > 0 {
		fmt.Printf("hottest atom: #%d at column %d (dissipation %.3e)\n",
			amax, dev.Col(amax), dmax)
	}
}
