// Command qtsim runs a self-consistent dissipative quantum transport
// simulation on a synthetic nano-device and reports currents, heat flow and
// the convergence history.
//
// Example:
//
//	qtsim -na 48 -rows 4 -bnum 4 -nkz 3 -ne 24 -variant dace -iters 6
//
// A run is described by a versioned core.RunConfig: -config loads one from
// a JSON file (see examples/run.json), and any device/solver flags given on
// the command line override the file's values. The same config document,
// unchanged, can be submitted to the qtsimd service. Without -config the
// built-in default config is used, so the flag-only invocation behaves as
// it always has.
//
// With -metrics-addr the process serves Prometheus-style metrics, expvar
// and net/http/pprof while the simulation runs; with -trace-out it writes
// one JSON line per outer Born iteration (a Table 7-style phase
// breakdown). Either flag enables the observability layer and an
// end-of-run summary table. See docs/OBSERVABILITY.md.
//
// The kernels run under a tuned schedule when one is available: -tune
// selects the source (off = compile-time defaults, cached = the per-host
// schedule cache written by an earlier -tune=force, force = run a budgeted
// probe search now and cache it), and -schedule loads an explicit schedule
// JSON file — for example the fragment tilesearch -json emits. See the
// autotuner section of ARCHITECTURE.md.
//
// With -dist TExTA (or "dist" in the config) the SSE phase runs on a
// simulated rank grid with fault tolerance; -dist N with a plain process
// count lets the schedule (or the §4.1 model search) pick the TE×TA
// factorization. Fault tolerance: -checkpoint persists a
// restartable snapshot every iteration, -comm-timeout bounds failure
// detection, and -inject-fault ITER:RANK[:OP] kills a rank mid-run to
// demonstrate checkpointed recovery (the run rebuilds a smaller cluster and
// still converges to the fault-free observables).
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"negfsim/internal/comm"
	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/obs"
	"negfsim/internal/tune"
)

// traceLine is the JSON schema of one -trace-out record. The four phase
// durations sum exactly to wall: "other" absorbs residual computation and
// bookkeeping, so consumers can treat the line as a complete partition of
// the iteration (the Table 7 reading). Span deltas are cumulative across
// workers and may exceed wall under parallel execution.
type traceLine struct {
	Iter      int              `json:"iter"`
	WallNs    int64            `json:"wall_ns"`
	Phases    map[string]int64 `json:"phases_ns"`
	Residual  *float64         `json:"residual,omitempty"`
	Converged bool             `json:"converged"`
	Spans     map[string]int64 `json:"spans_ns,omitempty"`
}

// traceWriter serializes IterStats to the -trace-out file.
func traceWriter(f *os.File) func(core.IterStats) {
	enc := json.NewEncoder(f)
	return func(st core.IterStats) {
		other := st.Wall - st.GF - st.SSE - st.Mix
		if other < 0 {
			other = 0
		}
		line := traceLine{
			Iter:   st.Iter,
			WallNs: st.Wall.Nanoseconds(),
			Phases: map[string]int64{
				"gf":    st.GF.Nanoseconds(),
				"sse":   st.SSE.Nanoseconds(),
				"mix":   st.Mix.Nanoseconds(),
				"other": other.Nanoseconds(),
			},
			Converged: st.Converged,
		}
		if !math.IsNaN(st.Residual) {
			r := st.Residual
			line.Residual = &r
		}
		if len(st.Spans) > 0 {
			line.Spans = make(map[string]int64, len(st.Spans))
			for _, s := range st.Spans {
				line.Spans[s.Name] = s.Total.Nanoseconds()
			}
		}
		if err := enc.Encode(line); err != nil {
			log.Printf("trace write: %v", err)
		}
	}
}

// serveMetrics starts the diagnostics endpoint: Prometheus text at
// /metrics, the expvar JSON dump at /debug/vars, and the full pprof
// suite under /debug/pprof/.
func serveMetrics(addr string) {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("metrics server: %v", err)
		}
	}()
}

// configFlags holds the flags that override RunConfig fields. The defaults
// never matter — a flag is only copied into the config when the user set it
// explicitly (flag.Visit), so file values survive unset flags.
type configFlags struct {
	na, rows, bnum, nkz, ne, nw, nb, norb int
	seed                                  uint64
	variant                               string
	iters                                 int
	tol, mix, bias, kt                    float64
	gate                                  float64
	dist                                  string
	space                                 int
	commTimeout                           time.Duration
	adapt                                 string
	adaptTol                              float64
}

// registerConfigFlags declares the config-overriding flags on fs. The
// defaults mirror DefaultRunConfig so `qtsim -help` shows the effective
// zero-flag run.
func registerConfigFlags(fs *flag.FlagSet) *configFlags {
	def := core.DefaultRunConfig()
	grid := def.Device.Grid()
	f := &configFlags{}
	fs.IntVar(&f.na, "na", grid.NA, "number of atoms (nanowire devices)")
	fs.IntVar(&f.rows, "rows", grid.Rows, "atoms per column (fin height; nanowire devices)")
	fs.IntVar(&f.bnum, "bnum", grid.Bnum, "RGF blocks (nanowire devices)")
	fs.IntVar(&f.nkz, "nkz", grid.Nkz, "electron/phonon momentum points (nanowire devices)")
	fs.IntVar(&f.ne, "ne", grid.NE, "energy grid points (nanowire devices)")
	fs.IntVar(&f.nw, "nw", grid.Nw, "phonon frequencies (nanowire devices)")
	fs.IntVar(&f.nb, "nb", grid.NB, "neighbors per atom (nanowire devices)")
	fs.IntVar(&f.norb, "norb", grid.Norb, "orbitals per atom (nanowire devices)")
	fs.Uint64Var(&f.seed, "seed", grid.Seed, "structure seed (nanowire devices)")
	fs.StringVar(&f.variant, "variant", def.Variant, "SSE kernel: reference | omen | dace")
	fs.IntVar(&f.iters, "iters", def.MaxIter, "max Born iterations")
	fs.Float64Var(&f.tol, "tol", def.Tol, "convergence tolerance on G")
	fs.Float64Var(&f.mix, "mix", def.Mixing, "self-energy mixing factor")
	fs.Float64Var(&f.bias, "bias", def.Bias, "source-drain bias (MuL−MuR) [eV]")
	fs.Float64Var(&f.kt, "kt", def.KT, "electron thermal energy [eV]")
	fs.Float64Var(&f.gate, "gate", math.NaN(), "gate voltage [V]; enables the coupled NEGF–Poisson solver")
	fs.StringVar(&f.dist, "dist", def.Dist, "run the SSE phase on a simulated TExTA rank grid, e.g. 2x2 (fault-tolerant)")
	fs.IntVar(&f.space, "space", def.Space, "partition every electron retarded solve across this many spatial ranks (device-dimension split; needs bnum ≥ 2·space−1)")
	fs.DurationVar(&f.commTimeout, "comm-timeout", 0, "per-operation deadline of the simulated cluster (default 10s)")
	fs.StringVar(&f.adapt, "adapt", "off", "adaptive energy grid: off | grid | grid+sigma (error-controlled refinement; see docs/API.md)")
	fs.Float64Var(&f.adaptTol, "adapt-tol", 1e-6, "adaptive refinement tolerance on the integrated current (with -adapt)")
	return f
}

// applyConfigFlags copies every explicitly-set flag of fs over cfg — the
// "flags override file values" half of the -config contract. fs must
// already be parsed. The per-field device flags describe the flat nanowire
// grid, so they reject configs whose device is another zoo kind (edit the
// config's "device" section for those).
func applyConfigFlags(fs *flag.FlagSet, f *configFlags, cfg *core.RunConfig) error {
	grid := cfg.Device.Grid()
	devTouched := false
	fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "na":
			grid.NA = f.na
			devTouched = true
		case "rows":
			grid.Rows = f.rows
			devTouched = true
		case "bnum":
			grid.Bnum = f.bnum
			devTouched = true
		case "nkz":
			grid.Nkz = f.nkz
			grid.Nqz = f.nkz
			devTouched = true
		case "ne":
			grid.NE = f.ne
			devTouched = true
		case "nw":
			grid.Nw = f.nw
			devTouched = true
		case "nb":
			grid.NB = f.nb
			devTouched = true
		case "norb":
			grid.Norb = f.norb
			devTouched = true
		case "seed":
			grid.Seed = f.seed
			devTouched = true
		case "variant":
			cfg.Variant = f.variant
		case "iters":
			cfg.MaxIter = f.iters
		case "tol":
			cfg.Tol = f.tol
		case "mix":
			cfg.Mixing = f.mix
		case "bias":
			cfg.Bias = f.bias
		case "kt":
			cfg.KT = f.kt
		case "gate":
			g := core.DefaultGate(f.gate, 0)
			cfg.Gate = &g
		case "dist":
			cfg.Dist = f.dist
		case "space":
			cfg.Space = f.space
		case "comm-timeout":
			cfg.CommTimeoutMs = int(f.commTimeout / time.Millisecond)
		case "adapt":
			a := core.AdaptSpec{}
			if cfg.Adapt != nil {
				a = *cfg.Adapt
			}
			a.Mode = f.adapt
			cfg.Adapt = &a
		case "adapt-tol":
			a := core.AdaptSpec{}
			if cfg.Adapt != nil {
				a = *cfg.Adapt
			}
			a.TolCurrent = f.adaptTol
			cfg.Adapt = &a
		}
	})
	if devTouched {
		if k := cfg.Device.Kind(); k != "" && k != "nanowire" {
			return fmt.Errorf("device flags (-na, -rows, ...) describe the nanowire grid; the config's device kind is %q — edit its \"device\" section instead", k)
		}
		cfg.Device = device.WrapParams(grid)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qtsim: ")

	f := registerConfigFlags(flag.CommandLine)
	configPath := flag.String("config", "", "run config JSON file (see examples/run.json); flags override file values")
	campaignPath := flag.String("campaign", "", "campaign request JSON file (see examples/campaign.json): run an I–V or T(E) bias ladder offline and exit")
	campaignOut := flag.String("campaign-out", "", "basename for -campaign artifacts; writes PREFIX.csv and PREFIX.json (default: CSV to stdout)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
	traceOut := flag.String("trace-out", "", "write one JSON line per Born iteration to this file")
	injectFault := flag.String("inject-fault", "", "kill a rank mid-run: ITER:RANK[:OP] (0-based Born iteration, rank id, comm op; requires a distributed run)")
	checkpoint := flag.String("checkpoint", "", "gob checkpoint file: resumed from if present, written after every iteration (distributed) or at the end (serial)")
	peers := flag.String("peers", "", "comma-separated peer addresses (index = rank): carry the distributed SSE over TCP across real processes, this one hosting -peer-rank")
	peerRank := flag.Int("peer-rank", 0, "rank this process hosts when -peers is set")
	tuneMode := flag.String("tune", "cached", "kernel schedule source: off | cached | force (force probes now and caches)")
	tuneBudget := flag.Duration("tune-budget", tune.DefaultBudget, "probe budget under -tune=force")
	schedulePath := flag.String("schedule", "", "explicit schedule JSON file (e.g. tilesearch -json output); overrides -tune")
	flag.Parse()

	cfg := core.DefaultRunConfig()
	if *configPath != "" {
		loaded, err := core.LoadRunConfig(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg = *loaded
	}
	if err := applyConfigFlags(flag.CommandLine, f, &cfg); err != nil {
		log.Fatal(err)
	}

	observing := *metricsAddr != "" || *traceOut != ""
	if observing {
		obs.Enable()
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr)
	}

	sched, err := tune.Startup(*tuneMode, *schedulePath, *tuneBudget, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if *campaignPath != "" {
		if err := runCampaign(*campaignPath, *campaignOut, sched.Workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if n, aerr := strconv.Atoi(cfg.Dist); aerr == nil && n > 0 {
		// A plain process count: let the schedule (or the model search)
		// choose the TE×TA factorization before the config is validated.
		tl, ok := sched.TileFor(cfg.Device.Grid(), n)
		if !ok {
			var serr error
			if tl, serr = tune.SearchDecomposition(cfg.Device.Grid(), n, 0); serr != nil {
				log.Fatal(serr)
			}
		}
		cfg.Dist = fmt.Sprintf("%dx%d", tl.TE, tl.TA)
		fmt.Printf("dist: %d processes → %dx%d grid (%s)\n",
			n, tl.TE, tl.TA, map[bool]string{true: "from schedule", false: "model search"}[ok])
	}

	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	distCfg, distributed, err := cfg.DistConfig()
	if err != nil {
		log.Fatal(err)
	}
	var faultPlan *comm.FaultPlan
	var faultIter int
	if *injectFault != "" {
		if !distributed {
			log.Fatal("-inject-fault requires a distributed run (-dist or \"dist\" in the config)")
		}
		var rank, op int
		if _, err := fmt.Sscanf(*injectFault, "%d:%d:%d", &faultIter, &rank, &op); err != nil {
			op = 0
			if _, err := fmt.Sscanf(*injectFault, "%d:%d", &faultIter, &rank); err != nil {
				log.Fatalf("-inject-fault must look like ITER:RANK or ITER:RANK:OP, got %q", *injectFault)
			}
		}
		faultPlan = &comm.FaultPlan{Kill: true, KillRank: rank, KillAtOp: op}
	}
	var resume *core.Checkpoint
	if *checkpoint != "" {
		if f, err := os.Open(*checkpoint); err == nil {
			ck, lerr := core.LoadCheckpoint(f)
			f.Close()
			if lerr != nil {
				log.Fatal(lerr)
			}
			if cerr := ck.Compatible(cfg.Device); cerr != nil {
				log.Fatal(cerr)
			}
			if cerr := ck.CompatibleGrid(cfg.AdaptEnabled()); cerr != nil {
				log.Fatal(cerr)
			}
			resume = ck
			fmt.Printf("resuming from %s (iteration %d)\n", *checkpoint, ck.Iterations)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}

	opts, err := cfg.Options()
	if err != nil {
		log.Fatal(err)
	}
	if opts.Workers <= 0 && sched.Workers > 0 {
		opts.Workers = sched.Workers
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts.OnIteration = traceWriter(f)
	}

	p := cfg.Device.Grid()
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		log.Fatal(err)
	}
	dev := sim.Dev

	fmt.Printf("structure: kind=%s, NA=%d (%d×%d), Nkz=%d, NE=%d, Nω=%d, NB=%d, Norb=%d\n",
		cfg.Device.Kind(), p.NA, p.Cols(), p.Rows, p.Nkz, p.NE, p.Nw, p.NB, p.Norb)
	fmt.Printf("solver: %s kernel, ≤%d iterations, mixing %.2f, bias %.2f eV\n",
		opts.Variant, opts.MaxIter, opts.Mixing, cfg.Bias)

	if *peers != "" && !distributed {
		log.Fatal("-peers requires a distributed run (-dist/-space or \"dist\"/\"space\" in the config)")
	}

	start := time.Now()
	var res *core.Result
	adaptCfg, adaptive := cfg.AdaptConfig()
	switch {
	case adaptive:
		adaptCfg.Resume = resume
		if distributed {
			if *peers != "" {
				log.Fatal("-adapt does not compose with -peers (the grid controller must run in a single process)")
			}
			distCfg.Fault = faultPlan
			distCfg.FaultIter = faultIter
			distCfg.CheckpointPath = *checkpoint
			adaptCfg.Dist = &distCfg
		}
		r, bytes, err := sim.RunAdaptive(adaptCfg)
		if err != nil {
			log.Fatal(err)
		}
		res = r
		a := res.Adapt
		fmt.Printf("\nadaptive grid: %d/%d energy points after %d rounds (%s), %d refined, %d coarsened\n",
			a.PointsActive, a.PointsFine, a.Rounds, a.Reason, a.Refined, a.Coarsened)
		fmt.Printf("RGF solves: %d of %d uniform-grid equivalent (%.0f%% saved)",
			a.Solves, a.UniformSolves, 100*(1-float64(a.Solves)/float64(a.UniformSolves)))
		if a.SigmaSeeded > 0 {
			fmt.Printf(", %d points Σ-seeded", a.SigmaSeeded)
		}
		fmt.Println()
		if distributed {
			fmt.Printf("distributed rounds exchanged %.2f MiB\n", float64(bytes)/(1<<20))
		} else if *checkpoint != "" {
			f, err := os.Create(*checkpoint)
			if err != nil {
				log.Fatal(err)
			}
			if err := core.CheckpointOf(cfg.Device, res).Save(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint written to %s\n", *checkpoint)
		}
	case distributed:
		distCfg.Fault = faultPlan
		distCfg.FaultIter = faultIter
		distCfg.CheckpointPath = *checkpoint
		distCfg.Resume = resume
		if *peers != "" {
			list := strings.Split(*peers, ",")
			procs := distCfg.TE * distCfg.TA
			if procs == 0 {
				procs = distCfg.Space
			}
			if procs != len(list) {
				if distCfg.TE > 0 {
					log.Fatalf("dist grid %dx%d needs %d peers, got %d", distCfg.TE, distCfg.TA, procs, len(list))
				}
				log.Fatalf("spatial split over %d ranks needs %d peers, got %d", distCfg.Space, procs, len(list))
			}
			cl, err := comm.NewClusterTCP(context.Background(), *peerRank, list)
			if err != nil {
				log.Fatal(err)
			}
			defer cl.Close()
			distCfg.Cluster = cl
			fmt.Printf("peer %d of %d, TCP cluster over %s\n", *peerRank, len(list), *peers)
		}
		r, bytes, err := sim.RunDistributedFT(distCfg)
		if err != nil {
			log.Fatal(err)
		}
		if distCfg.TE > 0 {
			fmt.Printf("\ndistributed SSE on %dx%d ranks: %.2f MiB exchanged, %d recover%s\n",
				distCfg.TE, distCfg.TA, float64(bytes)/(1<<20), r.Recoveries,
				map[bool]string{true: "y", false: "ies"}[r.Recoveries == 1])
		} else {
			fmt.Printf("\nspatially partitioned GF on %d ranks: %.2f MiB exchanged, %d recover%s\n",
				distCfg.Space, float64(bytes)/(1<<20), r.Recoveries,
				map[bool]string{true: "y", false: "ies"}[r.Recoveries == 1])
		}
		res = r
	case cfg.Gate != nil:
		es, err := sim.RunWithPoisson(*cfg.Gate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nGummel: %d outer iterations (converged: %v)\n", es.OuterIterations, es.GummelConverged)
		res = es.Result
	default:
		var err error
		if resume != nil {
			res, err = sim.RunFrom(resume)
		} else {
			res, err = sim.Run()
		}
		if err != nil {
			log.Fatal(err)
		}
		if *checkpoint != "" {
			f, err := os.Create(*checkpoint)
			if err != nil {
				log.Fatal(err)
			}
			if err := core.CheckpointOf(cfg.Device, res).Save(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint written to %s\n", *checkpoint)
		}
	}
	wall := time.Since(start)

	fmt.Printf("\niterations: %d (converged: %v)\n", res.Iterations, res.Converged)
	for i, r := range res.Residuals {
		fmt.Printf("  iter %d: |ΔG| = %.3e\n", i+1, r)
	}
	fmt.Printf("\nelectron current:  I_L = %+.6e   I_R = %+.6e\n", res.Obs.CurrentL, res.Obs.CurrentR)
	fmt.Printf("phonon heat flow:  Q_L = %+.6e   Q_R = %+.6e\n", res.Obs.HeatL, res.Obs.HeatR)

	var dmax float64
	amax := 0
	for a, d := range res.Obs.DissipationPerAtom {
		if d > dmax {
			dmax, amax = d, a
		}
	}
	if dmax > 0 {
		fmt.Printf("hottest atom: #%d at column %d (dissipation %.3e)\n",
			amax, dev.Col(amax), dmax)
	}

	if observing {
		fmt.Println()
		obs.WriteSummary(os.Stdout, wall)
	}
}
