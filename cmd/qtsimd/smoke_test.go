package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"negfsim/internal/core"
)

// TestServeSmoke is the end-to-end daemon exercise behind `make serve-test`:
// it builds the real qtsimd binary, starts it on an ephemeral port, submits
// a job over HTTP, streams its iterations, cancels it, runs a second job to
// completion, and shuts the daemon down cleanly with SIGTERM.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "qtsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building qtsimd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-concurrent", "2", "-drain-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	}()

	// The daemon announces its bound address on stdout; -addr :0 means the
	// port is only knowable from that line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon produced no output; stderr:\n%s", stderr.String())
	}
	m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(sc.Text())
	if m == nil {
		t.Fatalf("unexpected startup line %q", sc.Text())
	}
	base := "http://" + m[1]
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// A job that cannot finish on its own: the cancel below must stop it.
	long := core.DefaultRunConfig()
	long.MaxIter = 100_000
	long.Tol = 1e-300
	longID := submit(t, base, long)

	// Stream until the first iteration record proves the job is running.
	streamResp, err := http.Get(base + "/v1/jobs/" + longID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	lineSc := bufio.NewScanner(streamResp.Body)
	if !lineSc.Scan() {
		streamResp.Body.Close()
		t.Fatalf("stream of %s delivered no records", longID)
	}
	var rec struct {
		Iter int `json:"iter"`
	}
	if err := json.Unmarshal(lineSc.Bytes(), &rec); err != nil || rec.Iter != 1 {
		streamResp.Body.Close()
		t.Fatalf("first stream record %q (err %v), want iter 1", lineSc.Text(), err)
	}
	streamResp.Body.Close()

	resp, err := http.Post(base+"/v1/jobs/"+longID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	waitJobState(t, base, longID, "cancelled")

	// A short job must run to completion and serve a result after the
	// cancel freed the slot.
	short := core.DefaultRunConfig()
	short.MaxIter = 2
	shortID := submit(t, base, short)
	waitJobState(t, base, shortID, "succeeded")
	resp, err = http.Get(base + "/v1/jobs/" + shortID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "observables") {
		t.Fatalf("result: status %d body %s", resp.StatusCode, body)
	}

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if exitErr != nil {
			t.Fatalf("daemon exited dirty: %v\nstderr:\n%s", exitErr, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("daemon log does not report a drained shutdown:\n%s", stderr.String())
	}
}

// submit POSTs a config and returns the accepted job id.
func submit(t *testing.T, base string, cfg core.RunConfig) string {
	t.Helper()
	raw, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit response %s (err %v)", body, err)
	}
	return st.ID
}

// waitJobState polls a job until it reports the wanted state.
func waitJobState(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if st.State == "failed" || (st.State == "succeeded" && want != "succeeded") || (st.State == "cancelled" && want != "cancelled") {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
