package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"syscall"

	"negfsim/internal/comm"
	"negfsim/internal/core"
)

// Peer mode: instead of serving the HTTP job API, the process hosts ONE
// rank of a multi-process TCP cluster and executes a single distributed
// fault-tolerant run SPMD-style — every peer runs the replicated GF phase
// and the cluster carries the communication-avoiding SSE exchanges over
// loopback or the network. The run config (the same document qtsim and the
// job API consume) must carry a "dist" grid whose TE·TA equals the peer
// count.
//
//	qtsimd -peer-rank 0 -peers 127.0.0.1:9000,127.0.0.1:9001 -peer-config run.json -result-out r0.json &
//	qtsimd -peer-rank 1 -peers 127.0.0.1:9000,127.0.0.1:9001 -peer-config run.json -result-out r1.json
//
// Links are dialed lazily with retries, so peers may start in any order.
// If a peer process dies mid-run (crash, OOM, kill -9), the survivors
// detect the connection loss promptly, restore the last checkpoint, and
// finish the run on their local shared-memory kernels with the same
// observables — the drill behind -die-after-iter, which makes a peer
// SIGKILL itself after N completed Born iterations.

// peerResult is the JSON document a peer writes to -result-out: the
// scalar observables and run bookkeeping used to compare peers against a
// single-process baseline.
type peerResult struct {
	Rank       int       `json:"rank"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Recoveries int       `json:"recoveries"`
	Bytes      int64     `json:"bytes"`
	CurrentL   float64   `json:"current_l"`
	CurrentR   float64   `json:"current_r"`
	HeatL      float64   `json:"heat_l"`
	HeatR      float64   `json:"heat_r"`
	Residuals  []float64 `json:"residuals"`
}

// runPeer executes the one-shot SPMD peer run and returns the process's
// exit error.
func runPeer(rank int, peersCSV, cfgPath, resultOut string, dieAfter int) error {
	peers := strings.Split(peersCSV, ",")
	if rank < 0 || rank >= len(peers) {
		return fmt.Errorf("-peer-rank %d outside the %d-entry peer list", rank, len(peers))
	}
	cfg := core.DefaultRunConfig()
	if cfgPath != "" {
		loaded, err := core.LoadRunConfig(cfgPath)
		if err != nil {
			return err
		}
		cfg = *loaded
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	distCfg, distributed, err := cfg.DistConfig()
	if err != nil {
		return err
	}
	if !distributed {
		return fmt.Errorf("peer mode needs a distributed run: set \"dist\" (e.g. \"2x1\") or \"space\" in %s", cfgPath)
	}
	procs := distCfg.TE * distCfg.TA
	if procs == 0 {
		procs = distCfg.Space
	}
	if procs != len(peers) {
		if distCfg.TE > 0 {
			return fmt.Errorf("dist grid %dx%d needs %d peers, got %d", distCfg.TE, distCfg.TA, procs, len(peers))
		}
		return fmt.Errorf("spatial split over %d ranks needs %d peers, got %d", distCfg.Space, procs, len(peers))
	}
	opts, err := cfg.Options()
	if err != nil {
		return err
	}
	if dieAfter > 0 {
		// The fault drill: a hard self-kill after N completed iterations, so
		// the death looks exactly like a crashed peer (no graceful teardown,
		// no FIN before the checkpointed state diverges).
		opts.OnIteration = func(st core.IterStats) {
			if st.Iter >= dieAfter {
				log.Printf("peer %d: -die-after-iter %d reached, self-killing", rank, dieAfter)
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		return err
	}
	cluster, err := comm.NewClusterTCP(context.Background(), rank, peers)
	if err != nil {
		return err
	}
	defer cluster.Close()
	distCfg.Cluster = cluster

	if distCfg.TE > 0 {
		log.Printf("peer %d/%d up, dist %dx%d, peers %s", rank, len(peers), distCfg.TE, distCfg.TA, peersCSV)
	} else {
		log.Printf("peer %d/%d up, spatial split over %d ranks, peers %s", rank, len(peers), distCfg.Space, peersCSV)
	}
	res, bytes, err := sim.RunDistributedFTCtx(context.Background(), distCfg)
	if err != nil {
		return err
	}
	log.Printf("peer %d done: %d iterations (converged %v), %.2f MiB exchanged locally, %d recoveries",
		rank, res.Iterations, res.Converged, float64(bytes)/(1<<20), res.Recoveries)
	out := peerResult{
		Rank: rank, Iterations: res.Iterations, Converged: res.Converged,
		Recoveries: res.Recoveries, Bytes: bytes,
		CurrentL: res.Obs.CurrentL, CurrentR: res.Obs.CurrentR,
		HeatL: res.Obs.HeatL, HeatR: res.Obs.HeatR,
		Residuals: res.Residuals,
	}
	if resultOut != "" {
		f, err := os.Create(resultOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(out); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return json.NewEncoder(os.Stdout).Encode(out)
}
