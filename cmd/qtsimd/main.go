// Command qtsimd is the multi-tenant simulation daemon: it serves the
// internal/serve HTTP/JSON job API, multiplexing concurrent NEGF
// simulations over the process's shared worker pool under admission
// control.
//
// A job is the same versioned RunConfig document cmd/qtsim consumes, so a
// run tuned on the command line can be submitted unchanged:
//
//	qtsimd -addr :8080 &
//	curl -d @examples/run.json localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j1/stream        # NDJSON, one line per Born iteration
//	curl -X POST localhost:8080/v1/jobs/j1/cancel
//	curl localhost:8080/v1/jobs/j1/result
//
// The daemon resolves its kernel schedule at boot exactly like qtsim
// (-tune=off|cached|force, -schedule FILE): the tuned GEMM blocking is
// installed once before any job starts, and a tuned worker split becomes
// the default -worker-budget. Per-job configs only carry per-run knobs, so
// concurrent tenants never race on kernel configuration.
//
// Observability is always on: /metrics exposes the registry (global solver
// counters plus per-job serve.job_* series) in Prometheus text format, and
// /healthz reports the queue snapshot. SIGINT/SIGTERM drain gracefully:
// the listener closes, queued jobs are cancelled, running jobs get their
// contexts cancelled and stop within one Born iteration.
//
// With -peers the daemon instead becomes one rank of a multi-process TCP
// cluster and executes a single distributed run end-to-end (see peer.go):
//
//	qtsimd -peer-rank 0 -peers 127.0.0.1:9000,127.0.0.1:9001 -peer-config run.json -result-out r0.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"negfsim/internal/campaign"
	"negfsim/internal/core"
	"negfsim/internal/obs"
	"negfsim/internal/serve"
	"negfsim/internal/tune"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for the job API")
	maxConcurrent := flag.Int("max-concurrent", 2, "simulations run simultaneously")
	queueDepth := flag.Int("queue-depth", 16, "jobs admitted beyond the running ones before 429")
	workerBudget := flag.Int("worker-budget", runtime.GOMAXPROCS(0), "total grid-point parallelism shared by all running jobs")
	retain := flag.Int("retain", 64, "finished jobs kept queryable before eviction")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	peers := flag.String("peers", "", "comma-separated peer addresses (index = rank); runs ONE distributed job SPMD-style instead of serving")
	peerRank := flag.Int("peer-rank", -1, "rank this process hosts when -peers is set")
	peerConfig := flag.String("peer-config", "", "run config JSON for peer mode (must carry a \"dist\" grid matching the peer count)")
	resultOut := flag.String("result-out", "", "peer mode: write the run's result JSON here (default stdout)")
	dieAfterIter := flag.Int("die-after-iter", 0, "peer mode fault drill: SIGKILL self after N completed Born iterations")
	tuneMode := flag.String("tune", "cached", "kernel schedule source: off | cached | force (force probes now and caches)")
	tuneBudget := flag.Duration("tune-budget", tune.DefaultBudget, "probe budget under -tune=force")
	schedulePath := flag.String("schedule", "", "explicit schedule JSON file; overrides -tune")
	adaptMode := flag.String("adapt", "", "daemon-wide adaptive energy grid for serial jobs without their own \"adapt\" block: off | grid | grid+sigma")
	adaptTol := flag.Float64("adapt-tol", 1e-6, "refinement tolerance on the integrated current (with -adapt)")
	flag.Parse()

	obs.Enable()
	// The tuned GEMM blocking is process-global and installed exactly once,
	// before any job runs; per-job schedules are restricted to per-run
	// knobs (worker split), so concurrent jobs never race on it.
	tuned, err := tune.Startup(*tuneMode, *schedulePath, *tuneBudget, log.Printf)
	if err != nil {
		log.Fatalf("qtsimd: %v", err)
	}
	if *peers != "" {
		if err := runPeer(*peerRank, *peers, *peerConfig, *resultOut, *dieAfterIter); err != nil {
			log.Fatalf("qtsimd: peer: %v", err)
		}
		return
	}
	// An explicit -worker-budget wins; otherwise a tuned worker split
	// becomes the pool budget shared across tenants.
	budgetSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "worker-budget" {
			budgetSet = true
		}
	})
	if !budgetSet && tuned.Workers > 0 {
		*workerBudget = tuned.Workers
	}
	var defaultAdapt *core.AdaptSpec
	if *adaptMode != "" && *adaptMode != "off" {
		defaultAdapt = &core.AdaptSpec{Mode: *adaptMode, TolCurrent: *adaptTol}
	}
	sched := serve.New(serve.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		WorkerBudget:  *workerBudget,
		Retain:        *retain,
		DefaultAdapt:  defaultAdapt,
	})
	if defaultAdapt != nil {
		fmt.Printf("qtsimd: serial jobs default to adapt mode %q (tol %g)\n", defaultAdapt.Mode, defaultAdapt.TolCurrent)
	}

	// Campaigns (bias-ladder sweeps) ride on the same scheduler: the
	// campaign API mounts its /v1/campaigns routes next to the job API,
	// each ladder point an ordinary warm-started job submission.
	mgr := campaign.NewManager(campaign.ServeBackend{S: sched}, *maxConcurrent)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qtsimd: %v", err)
	}
	mux := http.NewServeMux()
	campaign.NewAPI(mgr).Register(mux)
	mux.Handle("/", serve.NewAPI(sched))
	srv := &http.Server{Handler: mux}

	// Print the bound address (not the flag value) so -addr :0 scripts and
	// the smoke test can discover the port.
	fmt.Printf("qtsimd listening on %s (max-concurrent=%d queue-depth=%d worker-budget=%d)\n",
		ln.Addr(), *maxConcurrent, *queueDepth, *workerBudget)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("qtsimd: %v, draining", sig)
	case err := <-errc:
		log.Fatalf("qtsimd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("qtsimd: http shutdown: %v", err)
	}
	if err := mgr.Close(ctx); err != nil {
		log.Printf("qtsimd: campaign shutdown: %v", err)
	}
	if err := sched.Close(ctx); err != nil {
		log.Printf("qtsimd: scheduler shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("qtsimd: serve: %v", err)
	}
	log.Print("qtsimd: drained")
}
