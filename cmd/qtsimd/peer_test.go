package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"negfsim/internal/core"
)

// TestPeerModeEndToEnd is the multi-process acceptance drill behind
// `make peer-test`: two qtsimd peer processes carry a distributed
// fault-tolerant run over TCP loopback and must reproduce the
// single-process fault-free observables to 1e-8 — both in a clean run and
// after one peer SIGKILLs itself mid-run (checkpointed recovery on the
// survivor).
func TestPeerModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("peer test builds and execs the daemon binary twice")
	}
	bin := filepath.Join(t.TempDir(), "qtsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building qtsimd: %v\n%s", err, out)
	}

	cfg := core.DefaultRunConfig()
	cfg.MaxIter = 3
	cfg.Dist = "2x1"
	raw, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The single-process fault-free baseline every peer must reproduce.
	distCfg, distributed, err := cfg.DistConfig()
	if err != nil || !distributed {
		t.Fatalf("config must be distributed (err %v)", err)
	}
	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _, err := sim.RunDistributedFT(distCfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("fault-free", func(t *testing.T) {
		results := runPeerProcs(t, bin, cfgPath, -1)
		for rank, pr := range results {
			if pr.Iterations != baseline.Iterations {
				t.Errorf("peer %d ran %d iterations, baseline ran %d", rank, pr.Iterations, baseline.Iterations)
			}
			if pr.Recoveries != 0 {
				t.Errorf("peer %d recovered %d times in a fault-free run", rank, pr.Recoveries)
			}
			if pr.Bytes == 0 {
				t.Errorf("peer %d reports zero exchange traffic", rank)
			}
			comparePeer(t, rank, pr, baseline)
			// A clean run's residual history must match iteration for
			// iteration (a recovered run legitimately loses the redone
			// iteration's residual — no previous G to difference against —
			// so only the fault-free case checks this).
			if len(pr.Residuals) != len(baseline.Residuals) {
				t.Errorf("peer %d has %d residuals, baseline %d", rank, len(pr.Residuals), len(baseline.Residuals))
				continue
			}
			for i, r := range baseline.Residuals {
				if d := math.Abs(pr.Residuals[i] - r); d > 1e-8*(1+math.Abs(r)) {
					t.Errorf("peer %d residual %d = %g, baseline %g", rank, i+1, pr.Residuals[i], r)
				}
			}
		}
	})

	t.Run("peer-killed-mid-run", func(t *testing.T) {
		// Rank 1 SIGKILLs itself after one completed Born iteration — a hard
		// crash mid-exchange. Rank 0 must detect the dead connection,
		// restore its checkpoint, finish locally, and still land on the
		// fault-free observables.
		results := runPeerProcs(t, bin, cfgPath, 1)
		pr := results[0]
		if pr.Recoveries != 1 {
			t.Errorf("survivor recovered %d times, want 1", pr.Recoveries)
		}
		if pr.Iterations != baseline.Iterations {
			t.Errorf("survivor ran %d iterations, baseline ran %d", pr.Iterations, baseline.Iterations)
		}
		comparePeer(t, 0, pr, baseline)
	})
}

// comparePeer checks one peer's scalar observables against the baseline to
// the 1e-8 relative tolerance of the acceptance criteria.
func comparePeer(t *testing.T, rank int, pr peerResult, baseline *core.Result) {
	t.Helper()
	for _, c := range []struct {
		name     string
		got, ref float64
	}{
		{"current_l", pr.CurrentL, baseline.Obs.CurrentL},
		{"current_r", pr.CurrentR, baseline.Obs.CurrentR},
		{"heat_l", pr.HeatL, baseline.Obs.HeatL},
		{"heat_r", pr.HeatR, baseline.Obs.HeatR},
	} {
		if d := math.Abs(c.got - c.ref); d > 1e-8*(1+math.Abs(c.ref)) {
			t.Errorf("peer %d %s = %g, baseline %g (Δ %g)", rank, c.name, c.got, c.ref, d)
		}
	}
}

// runPeerProcs launches a 2-peer SPMD run over loopback and returns the
// decoded result of every peer that was expected to survive. killRank,
// when ≥ 0, makes that peer SIGKILL itself after one completed iteration
// (and its exit status plus missing result are then expected).
func runPeerProcs(t *testing.T, bin, cfgPath string, killRank int) map[int]peerResult {
	t.Helper()
	const n = 2
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // released for the peer process; lazy dial retries cover the window
	}
	peersCSV := addrs[0] + "," + addrs[1]

	dir := t.TempDir()
	cmds := make([]*exec.Cmd, n)
	outs := make([]*bytes.Buffer, n)
	resultPaths := make([]string, n)
	for rank := 0; rank < n; rank++ {
		resultPaths[rank] = filepath.Join(dir, fmt.Sprintf("r%d.json", rank))
		args := []string{
			"-peer-rank", fmt.Sprint(rank), "-peers", peersCSV,
			"-peer-config", cfgPath, "-result-out", resultPaths[rank],
		}
		if rank == killRank {
			args = append(args, "-die-after-iter", "1")
		}
		cmds[rank] = exec.Command(bin, args...)
		outs[rank] = &bytes.Buffer{}
		cmds[rank].Stdout = outs[rank]
		cmds[rank].Stderr = outs[rank]
		if err := cmds[rank].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	})

	type exit struct {
		rank int
		err  error
	}
	done := make(chan exit, n)
	for rank, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) { done <- exit{rank, cmd.Wait()} }(rank, cmd)
	}
	deadline := time.After(180 * time.Second)
	results := make(map[int]peerResult, n)
	for i := 0; i < n; i++ {
		select {
		case e := <-done:
			if e.rank == killRank {
				if e.err == nil {
					t.Errorf("peer %d was told to die but exited cleanly", e.rank)
				}
				continue
			}
			if e.err != nil {
				t.Fatalf("peer %d failed: %v\n%s", e.rank, e.err, outs[e.rank].String())
			}
			raw, err := os.ReadFile(resultPaths[e.rank])
			if err != nil {
				t.Fatalf("peer %d wrote no result: %v\n%s", e.rank, err, outs[e.rank].String())
			}
			var pr peerResult
			if err := json.Unmarshal(raw, &pr); err != nil {
				t.Fatalf("peer %d result: %v\n%s", e.rank, err, raw)
			}
			results[e.rank] = pr
		case <-deadline:
			for rank, out := range outs {
				t.Logf("peer %d output:\n%s", rank, out.String())
			}
			t.Fatal("peers did not finish within the deadline")
		}
	}
	return results
}
