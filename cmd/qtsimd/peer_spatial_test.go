package main

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"negfsim/internal/core"
)

// TestPeerModeEndToEndSpatial is the spatial-split half of the multi-process
// acceptance drill: two qtsimd peers carry the device-partitioned GF phase
// over TCP loopback (config "space": 2, no energy grid) and must reproduce
// the single-process baseline observables to 1e-8 — both in a clean run and
// after one peer SIGKILLs itself mid-run, leaving the survivor to restore
// its checkpoint and finish the solve fully locally.
func TestPeerModeEndToEndSpatial(t *testing.T) {
	if testing.Short() {
		t.Skip("peer test builds and execs the daemon binary twice")
	}
	bin := filepath.Join(t.TempDir(), "qtsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building qtsimd: %v\n%s", err, out)
	}

	cfg := core.DefaultRunConfig()
	cfg.MaxIter = 3
	cfg.Space = 2
	raw, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The single-process baseline: the same spatial split on an in-process
	// cluster (pinned elsewhere against the fully serial run).
	distCfg, distributed, err := cfg.DistConfig()
	if err != nil || !distributed {
		t.Fatalf("config must be distributed (err %v)", err)
	}
	if distCfg.Space != 2 || distCfg.TE != 0 {
		t.Fatalf("DistConfig = %+v, want spatial-only", distCfg)
	}
	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _, err := sim.RunDistributedFT(distCfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("fault-free", func(t *testing.T) {
		results := runPeerProcs(t, bin, cfgPath, -1)
		for rank, pr := range results {
			if pr.Iterations != baseline.Iterations {
				t.Errorf("peer %d ran %d iterations, baseline ran %d", rank, pr.Iterations, baseline.Iterations)
			}
			if pr.Recoveries != 0 {
				t.Errorf("peer %d recovered %d times in a fault-free run", rank, pr.Recoveries)
			}
			if pr.Bytes == 0 {
				t.Errorf("peer %d reports zero exchange traffic", rank)
			}
			comparePeer(t, rank, pr, baseline)
			if len(pr.Residuals) != len(baseline.Residuals) {
				t.Errorf("peer %d has %d residuals, baseline %d", rank, len(pr.Residuals), len(baseline.Residuals))
				continue
			}
			for i, r := range baseline.Residuals {
				if d := math.Abs(pr.Residuals[i] - r); d > 1e-8*(1+math.Abs(r)) {
					t.Errorf("peer %d residual %d = %g, baseline %g", rank, i+1, pr.Residuals[i], r)
				}
			}
		}
	})

	t.Run("peer-killed-mid-run", func(t *testing.T) {
		// Rank 1 SIGKILLs itself after one completed Born iteration. The
		// cluster is persistent and multi-process, so the survivor cannot
		// re-partition: it drops to a fully local solve from its checkpoint
		// and must still land on the baseline observables.
		results := runPeerProcs(t, bin, cfgPath, 1)
		pr := results[0]
		if pr.Recoveries != 1 {
			t.Errorf("survivor recovered %d times, want 1", pr.Recoveries)
		}
		if pr.Iterations != baseline.Iterations {
			t.Errorf("survivor ran %d iterations, baseline ran %d", pr.Iterations, baseline.Iterations)
		}
		comparePeer(t, 0, pr, baseline)
	})
}
