// Command scaling regenerates the scalability results of the paper:
// the strong- and weak-scaling curves of Fig. 13 on Piz Daint and Summit
// (modeled from first-principles flop counts, communication volumes and
// calibrated machine efficiencies), and the Table 8 extreme-scale run.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"negfsim/internal/device"
	"negfsim/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	machine := flag.String("machine", "both", "daint | summit | both")
	mode := flag.String("mode", "both", "strong | weak | both")
	extreme := flag.Bool("extreme", false, "print the Table 8 extreme-scale projection instead")
	flag.Parse()

	if *extreme {
		printTable8()
		return
	}
	machines := []perfmodel.Machine{}
	switch strings.ToLower(*machine) {
	case "daint":
		machines = append(machines, perfmodel.PizDaint)
	case "summit":
		machines = append(machines, perfmodel.Summit)
	case "both":
		machines = append(machines, perfmodel.PizDaint, perfmodel.Summit)
	default:
		log.Fatalf("unknown machine %q", *machine)
	}
	for _, m := range machines {
		if *mode == "strong" || *mode == "both" {
			printStrong(m)
		}
		if *mode == "weak" || *mode == "both" {
			printWeak(m)
		}
	}
}

func printStrong(m perfmodel.Machine) {
	nodes := []int{112, 224, 448, 900, 1800, 2700, 5400}
	if m.Name == "Summit" {
		nodes = []int{19, 38, 76, 114, 152, 228}
	}
	fmt.Printf("Fig. 13 (%s) — strong scaling, NA=4864, Nkz=7\n", m.Name)
	fmt.Printf("%-7s %-7s %11s %11s %11s %11s %8s %9s %9s\n",
		"nodes", "GPUs", "DaCe comp", "DaCe comm", "OMEN comp", "OMEN comm", "eff", "speedup", "comm spd")
	for _, pt := range perfmodel.StrongScaling(m, device.Paper4864(7), nodes) {
		fmt.Printf("%-7d %-7d %10.1fs %10.1fs %10.1fs %10.1fs %7.1f%% %8.1f× %8.0f×\n",
			pt.Nodes, pt.GPUs, pt.DaCe.Compute(), pt.DaCe.Comm,
			pt.OMEN.Compute(), pt.OMEN.Comm,
			100*pt.ScalingEfficiency, pt.TotalSpeedup, pt.CommSpeedup)
	}
	fmt.Println()
}

func printWeak(m perfmodel.Machine) {
	nodesPerKz := 128
	if m.Name == "Summit" {
		nodesPerKz = 22
	}
	fmt.Printf("Fig. 13 (%s) — weak scaling, NA=4864, Nkz ∈ {3..11}, %d nodes/kz\n", m.Name, nodesPerKz)
	fmt.Printf("%-5s %-7s %-7s %11s %11s %11s %11s %8s %9s\n",
		"Nkz", "nodes", "GPUs", "DaCe comp", "DaCe comm", "OMEN comp", "OMEN comm", "eff", "speedup")
	kzs := []int{3, 5, 7, 9, 11}
	for i, pt := range perfmodel.WeakScaling(m, kzs, nodesPerKz) {
		fmt.Printf("%-5d %-7d %-7d %10.1fs %10.1fs %10.1fs %10.1fs %7.1f%% %8.1f×\n",
			kzs[i], pt.Nodes, pt.GPUs, pt.DaCe.Compute(), pt.DaCe.Comm,
			pt.OMEN.Compute(), pt.OMEN.Comm,
			100*pt.ScalingEfficiency, pt.TotalSpeedup)
	}
	fmt.Println()
}

func printTable8() {
	fmt.Println("Table 8: Summit performance on 10,240 atoms (modeled)")
	fmt.Printf("%-5s %-7s %10s %9s %10s %9s %9s\n",
		"Nkz", "nodes", "GF Pflop", "GF time", "SSE Pflop", "SSE time", "comm")
	for _, r := range perfmodel.Table8(perfmodel.PaperTable8Configs) {
		fmt.Printf("%-5d %-7d %10.0f %8.1fs %10.0f %8.1fs %8.1fs\n",
			r.Nkz, r.Nodes, r.GFPflop, r.GFTime, r.SSEPflop, r.SSETime, r.CommTime)
	}
	p := device.Paper10240(21)
	t := perfmodel.Summit.Project(p, 3525, perfmodel.DaCe)
	fmt.Printf("\nsustained at (21, 3525): %.1f Pflop/s (paper reports 19.71)\n",
		perfmodel.SustainedPflops(p, t))
	fmt.Println("paper prints: GF 2922/3985/5579/5579 Pflop, 75.84/75.90/150.38/76.09 s;")
	fmt.Println("              SSE 490/910/1784/1784 Pflop, 95.46/116.67/346.56/175.15 s;")
	fmt.Println("              comm 44.02/43.93/121.91/122.35 s")
}
