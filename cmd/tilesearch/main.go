// Command tilesearch runs the exhaustive decomposition search of §4.1:
// over all feasible (TE, TA) factorizations of the process count, it finds
// the tiling that minimizes SSE communication volume, optionally under a
// per-process memory limit.
//
// With -json the best decomposition is emitted as a tune.Schedule fragment
// on stdout — default kernel blocking, no host key, one tile — which qtsim
// accepts verbatim via -schedule:
//
//	tilesearch -na 4864 -nkz 7 -p 1792 -json > sched.json
//	qtsim -schedule sched.json -dist 1792 ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/perfmodel"
	"negfsim/internal/tune"
)

// scheduleFragment renders the volume-minimizing decomposition for (p,
// procs, memLimit) as a tune.Schedule document. The fragment is
// deliberately host-independent — compile-time blocking, no host key — so
// the bytes are reproducible anywhere (the golden test relies on this) and
// applying it changes only the decomposition.
func scheduleFragment(p device.Params, procs int, memLimit float64) ([]byte, error) {
	tl, err := tune.SearchDecomposition(p, procs, memLimit)
	if err != nil {
		return nil, err
	}
	s := tune.DefaultSchedule()
	s.AddTile(tl)
	return s.Marshal()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tilesearch: ")
	nkz := flag.Int("nkz", 7, "momentum points")
	na := flag.Int("na", 4864, "atoms (4864 or 10240 presets)")
	procs := flag.Int("p", 1792, "process count")
	memGiB := flag.Float64("mem", 0, "per-process memory limit in GiB (0 = unlimited)")
	top := flag.Int("top", 8, "show the N best decompositions")
	jsonOut := flag.Bool("json", false, "emit the best decomposition as a tune.Schedule fragment for qtsim -schedule")
	place := flag.Bool("place", false, "compare the energy-grid and spatial-split axes for -p processes and report the cheaper one")
	flag.Parse()

	var p device.Params
	switch *na {
	case 4864:
		p = device.Paper4864(*nkz)
	case 10240:
		p = device.Paper10240(*nkz)
	default:
		log.Fatalf("presets exist for NA = 4864 and 10240, got %d", *na)
	}

	if *place {
		pl := perfmodel.PlaceSplit(p, *procs)
		fmt.Printf("structure NA=%d, Nkz=%d, NE=%d, Bnum=%d — placing %d processes\n",
			p.NA, p.Nkz, p.NE, p.Bnum, *procs)
		if pl.TE > 0 {
			fmt.Printf("energy grid:   TE=%d × TA=%d, %.3f TiB per iteration\n", pl.TE, pl.TA, comm.TiB(pl.GridBytes))
		} else {
			fmt.Println("energy grid:   infeasible")
		}
		if pl.Space > 0 {
			fmt.Printf("spatial split: %d ranks, %.3f TiB per iteration\n", pl.Space, comm.TiB(pl.SpaceBytes))
		} else {
			fmt.Printf("spatial split: infeasible (Bnum=%d < %d)\n", p.Bnum, 2**procs-1)
		}
		fmt.Printf("placement: %s\n", pl.Mode)
		return
	}

	if *jsonOut {
		out, err := scheduleFragment(p, *procs, *memGiB*(1<<30))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}

	best, feasible := comm.SearchTiles(p, *procs, *memGiB*(1<<30))
	if len(feasible) == 0 {
		log.Fatal("no feasible decomposition under the given constraints")
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].Bytes < feasible[j].Bytes })

	fmt.Printf("structure NA=%d, Nkz=%d, NE=%d, Nω=%d — %d processes, %d feasible tilings\n",
		p.NA, p.Nkz, p.NE, p.Nw, *procs, len(feasible))
	fmt.Printf("%-8s %-8s %14s %16s\n", "TE", "TA", "volume [TiB]", "mem/proc [GiB]")
	n := *top
	if n > len(feasible) {
		n = len(feasible)
	}
	for _, d := range feasible[:n] {
		fmt.Printf("%-8d %-8d %14.3f %16.3f\n",
			d.TE, d.TA, comm.TiB(d.Bytes), comm.PerProcessMemory(p, d.TE, d.TA)/(1<<30))
	}
	fmt.Printf("\noptimum: TE=%d × TA=%d, %.3f TiB total (OMEN scheme: %.2f TiB, %.0f× more)\n",
		best.TE, best.TA, comm.TiB(best.Bytes), comm.TiB(comm.OMENVolume(p, *procs)),
		comm.OMENVolume(p, *procs)/best.Bytes)
}
