package main

import (
	"os"
	"path/filepath"
	"testing"

	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/tune"
)

// TestScheduleFragmentGolden pins the -json output byte-for-byte for the
// paper's 4864-atom structure at 1792 processes. The fragment must stay
// host-independent (no host key, compile-time blocking), or this golden
// would differ between machines.
func TestScheduleFragmentGolden(t *testing.T) {
	p := device.Paper4864(7)
	got, err := scheduleFragment(p, 1792, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "schedule_4864_1792.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v (regenerate by writing the fragment output)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("-json fragment drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestScheduleFragmentConsumable checks the fragment round-trips through
// the same parser qtsim -schedule uses and carries the search's optimum.
func TestScheduleFragmentConsumable(t *testing.T) {
	p := device.Paper4864(7)
	const procs = 1792
	out, err := scheduleFragment(p, procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tune.ParseSchedule(out)
	if err != nil {
		t.Fatalf("qtsim -schedule would reject the fragment: %v", err)
	}
	if s.HostKey != "" {
		t.Fatalf("fragment leaked a host key: %q", s.HostKey)
	}
	tl, ok := s.TileFor(p, procs)
	if !ok {
		t.Fatal("fragment carries no tile for the searched shape")
	}
	best, _ := comm.SearchTiles(p, procs, 0)
	if tl.TE != best.TE || tl.TA != best.TA {
		t.Fatalf("fragment tile %dx%d is not the search optimum %dx%d", tl.TE, tl.TA, best.TE, best.TA)
	}
	if _, err := scheduleFragment(p, procs, 1); err == nil {
		t.Fatal("impossible memory limit must fail")
	}
}
