// Command benchjson converts `go test -bench` text output into a stable
// JSON benchmark record, so each PR can commit a machine-readable snapshot
// (BENCH_<n>.json) of the numbers it claims:
//
//	go test -bench 'BenchmarkExchange' -benchtime 5x -run '^$' ./internal/comm |
//	    go run ./cmd/benchjson -out BENCH_5.json
//
// Input from several packages can be concatenated; environment header lines
// (goos/goarch/cpu) are captured once, benchmark lines are parsed into
// {name, iterations, metrics} entries, and everything else is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is the emitted document.
type record struct {
	GoOS    string      `json:"goos,omitempty"`
	GoArch  string      `json:"goarch,omitempty"`
	CPU     string      `json:"cpu,omitempty"`
	Benches []benchLine `json:"benchmarks"`
}

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	rec, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse consumes go test -bench output. A benchmark line is
//
//	BenchmarkName-8   100   123456 ns/op   512 B/op   3 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parse(sc *bufio.Scanner) (*record, error) {
	rec := &record{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // a Benchmark… log line, not a result row
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := benchLine{
			Name:       strings.TrimPrefix(trimProcSuffix(fields[0]), "Benchmark"),
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad metric value %q", line, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		rec.Benches = append(rec.Benches, b)
	}
	return rec, sc.Err()
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends to names.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
