// Command sdfgdump inspects the SSE Σ^≷ computation as a stateful dataflow
// multigraph: it prints the graph (node counts, arrays, maps, memlets) and
// its predicted data movement before and after the §4.2 transformation
// sequence, optionally emitting Graphviz DOT renderings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"negfsim/internal/sdfg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdfgdump: ")
	dot := flag.String("dot", "", "write DOT files <prefix>_before.dot / <prefix>_after.dot")
	flag.Parse()

	env := sdfg.Env{"Nkz": 4, "Nqz": 2, "NE": 8, "Nw": 3, "N3D": 2, "NA": 4, "NB": 2, "no": 2}
	fmt.Println("symbol bindings:", env)

	before := sdfg.BuildSSESigma()
	fmt.Println("\n=== before transformation (Fig. 9 state) ===")
	fmt.Print(before.Describe())
	printMovement(before, env)

	after := sdfg.BuildSSESigma()
	m := after.FindMap("dHG")
	if err := sdfg.AbsorbOffset(after, m, "k", "q", "dHG"); err != nil {
		log.Fatal(err)
	}
	if err := sdfg.AbsorbOffset(after, m, "E", "w", "dHG"); err != nil {
		log.Fatal(err)
	}
	if err := sdfg.PermuteArray(after, "dHG", []int{3, 4, 2, 0, 1, 5, 6}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== after redundancy removal + data layout (Figs. 10b–c) ===")
	fmt.Print(after.Describe())
	printMovement(after, env)

	if *dot != "" {
		for name, p := range map[string]*sdfg.Program{"_before": before, "_after": after} {
			path := *dot + name + ".dot"
			if err := os.WriteFile(path, []byte(p.DOT()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func printMovement(p *sdfg.Program, env sdfg.Env) {
	m, err := p.MovementSummary(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predicted element accesses:")
	for _, arr := range []string{"G", "dH", "Dpre", "neigh", "dHG", "dHD", "Sigma"} {
		fmt.Printf("  %-6s reads %9d   writes %9d\n", arr, m.Reads[arr], m.Writes[arr])
	}
}
