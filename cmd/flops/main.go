// Command flops regenerates Table 3 of the paper: the single-iteration
// computational load (Pflop) of the contour-integral, RGF and SSE kernels
// on the 4,864-atom structure, for a sweep of momentum counts.
package main

import (
	"flag"
	"fmt"

	"negfsim/internal/device"
	"negfsim/internal/perfmodel"
	"negfsim/internal/sse"
)

func main() {
	na := flag.Int("na", 4864, "atoms (4864 for Table 3, 10240 for Table 8)")
	flag.Parse()

	fmt.Println("Table 3: Single Iteration Computational Load (Pflop)")
	fmt.Printf("%-18s", "Kernel")
	kzs := []int{3, 5, 7, 9, 11}
	for _, nkz := range kzs {
		fmt.Printf(" %10d", nkz)
	}
	fmt.Println()

	row := func(name string, f func(device.Params) float64) {
		fmt.Printf("%-18s", name)
		for _, nkz := range kzs {
			var p device.Params
			if *na == 10240 {
				p = device.Paper10240(nkz)
			} else {
				p = device.Paper4864(nkz)
			}
			fmt.Printf(" %10.2f", f(p)/1e15)
		}
		fmt.Println()
	}
	row("Contour Integral", perfmodel.ContourFlops)
	row("RGF", perfmodel.RGFFlops)
	row("SSE (OMEN)", sse.SigmaFlopsOMEN)
	row("SSE (DaCe)", sse.SigmaFlopsDaCe)

	fmt.Println("\npaper prints (NA=4864): CI 8.45..31.06, RGF 52.95..194.15,")
	fmt.Println("SSE OMEN 24.41..328.15, SSE DaCe 12.38..164.71")
}
